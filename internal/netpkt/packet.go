// Package netpkt provides the packet substrate for iGuard: a compact
// packet model, Ethernet/IPv4/TCP/UDP parsing and serialisation, and
// classic libpcap trace file I/O. It plays the role gopacket and the
// authors' PCAP tooling play in the original system, using only the
// standard library.
package netpkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

// Protocol numbers used by the traffic generators and feature extractor.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// Packet is one parsed IPv4 packet with the fields iGuard's data plane
// inspects. Payload carries the application bytes (possibly truncated).
type Packet struct {
	Timestamp time.Time
	SrcIP     [4]byte
	DstIP     [4]byte
	SrcPort   uint16
	DstPort   uint16
	Proto     uint8
	TTL       uint8
	TCPFlags  uint8
	// Length is the wire length in bytes (Ethernet header included),
	// which may exceed len(Payload)+headers when the payload was
	// truncated at capture.
	Length  int
	Payload []byte
}

// SrcAddr returns the source as a netip.Addr.
func (p *Packet) SrcAddr() netip.Addr { return netip.AddrFrom4(p.SrcIP) }

// DstAddr returns the destination as a netip.Addr.
func (p *Packet) DstAddr() netip.Addr { return netip.AddrFrom4(p.DstIP) }

// String renders the packet headline for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d proto=%d len=%d ttl=%d",
		p.Timestamp.Format("15:04:05.000000"),
		p.SrcAddr(), p.SrcPort, p.DstAddr(), p.DstPort, p.Proto, p.Length, p.TTL)
}

// Header sizes for serialisation.
const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
)

// headerOverhead returns the total header bytes for the packet's
// protocol stack.
func headerOverhead(proto uint8) int {
	switch proto {
	case ProtoTCP:
		return ethHeaderLen + ipv4HeaderLen + tcpHeaderLen
	case ProtoUDP:
		return ethHeaderLen + ipv4HeaderLen + udpHeaderLen
	default:
		return ethHeaderLen + ipv4HeaderLen
	}
}

// Marshal serialises the packet as Ethernet(IPv4(TCP|UDP(payload))).
// When p.Length exceeds the serialised size the IPv4 total-length field
// still reflects the real bytes written (capture truncation is a file-
// level concern, handled by the pcap writer's orig-length field).
func (p *Packet) Marshal() []byte {
	overhead := headerOverhead(p.Proto)
	buf := make([]byte, overhead+len(p.Payload))

	// Ethernet: synthetic MACs derived from the IPs, EtherType IPv4.
	copy(buf[0:6], []byte{0x02, 0x00, p.DstIP[0], p.DstIP[1], p.DstIP[2], p.DstIP[3]})
	copy(buf[6:12], []byte{0x02, 0x00, p.SrcIP[0], p.SrcIP[1], p.SrcIP[2], p.SrcIP[3]})
	binary.BigEndian.PutUint16(buf[12:14], 0x0800)

	// IPv4 header.
	ip := buf[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	totalLen := len(buf) - ethHeaderLen
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[8] = p.TTL
	ip[9] = p.Proto
	copy(ip[12:16], p.SrcIP[:])
	copy(ip[16:20], p.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:ipv4HeaderLen]))

	l4 := ip[ipv4HeaderLen:]
	switch p.Proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(l4[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], p.DstPort)
		l4[12] = 5 << 4 // data offset
		l4[13] = p.TCPFlags
		binary.BigEndian.PutUint16(l4[14:16], 65535) // window
		copy(l4[tcpHeaderLen:], p.Payload)
	case ProtoUDP:
		binary.BigEndian.PutUint16(l4[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], p.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(udpHeaderLen+len(p.Payload)))
		copy(l4[udpHeaderLen:], p.Payload)
	default:
		copy(l4, p.Payload)
	}
	return buf
}

// ipv4Checksum computes the standard one's-complement header checksum
// with the checksum field assumed zero.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// Unmarshal parses an Ethernet(IPv4(...)) frame into p. The timestamp
// and wire length must be supplied by the caller (they come from the
// capture layer). Non-IPv4 frames and truncated headers return errors.
func Unmarshal(data []byte, ts time.Time, wireLen int) (Packet, error) {
	var p Packet
	if len(data) < ethHeaderLen+ipv4HeaderLen {
		return p, fmt.Errorf("netpkt: frame too short: %d bytes", len(data))
	}
	etherType := binary.BigEndian.Uint16(data[12:14])
	if etherType != 0x0800 {
		return p, fmt.Errorf("netpkt: unsupported ethertype 0x%04x", etherType)
	}
	ip := data[ethHeaderLen:]
	if ip[0]>>4 != 4 {
		return p, fmt.Errorf("netpkt: not IPv4 (version %d)", ip[0]>>4)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return p, fmt.Errorf("netpkt: bad IHL %d", ihl)
	}
	p.Timestamp = ts
	p.TTL = ip[8]
	p.Proto = ip[9]
	copy(p.SrcIP[:], ip[12:16])
	copy(p.DstIP[:], ip[16:20])
	p.Length = wireLen
	if p.Length == 0 {
		p.Length = len(data)
	}

	l4 := ip[ihl:]
	switch p.Proto {
	case ProtoTCP:
		if len(l4) < tcpHeaderLen {
			return p, fmt.Errorf("netpkt: truncated TCP header")
		}
		p.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.DstPort = binary.BigEndian.Uint16(l4[2:4])
		p.TCPFlags = l4[13]
		off := int(l4[12]>>4) * 4
		if off >= tcpHeaderLen && len(l4) >= off {
			p.Payload = l4[off:]
		}
	case ProtoUDP:
		if len(l4) < udpHeaderLen {
			return p, fmt.Errorf("netpkt: truncated UDP header")
		}
		p.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.DstPort = binary.BigEndian.Uint16(l4[2:4])
		p.Payload = l4[udpHeaderLen:]
	default:
		p.Payload = l4
	}
	return p, nil
}
