package netpkt

import (
	"bytes"
	"testing"
	"time"
)

// FuzzUnmarshal hardens the frame parser: arbitrary bytes must never
// panic, and successfully parsed IPv4 frames must round-trip their
// header fields through Marshal.
func FuzzUnmarshal(f *testing.F) {
	p := samplePacket(ProtoTCP)
	f.Add(p.Marshal())
	q := samplePacket(ProtoUDP)
	f.Add(q.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data, time.Unix(0, 0), len(data))
		if err != nil {
			return
		}
		// Parsed packets re-serialise without panicking and keep the
		// addressing fields.
		frame := pkt.Marshal()
		re, err := Unmarshal(frame, pkt.Timestamp, len(frame))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if re.SrcIP != pkt.SrcIP || re.DstIP != pkt.DstIP || re.Proto != pkt.Proto {
			t.Fatalf("round trip changed addressing: %+v vs %+v", re, pkt)
		}
		if (pkt.Proto == ProtoTCP || pkt.Proto == ProtoUDP) &&
			(re.SrcPort != pkt.SrcPort || re.DstPort != pkt.DstPort) {
			t.Fatalf("round trip changed ports")
		}
	})
}

// FuzzPcapReader hardens the pcap file parser against corrupt streams.
func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	p := samplePacket(ProtoTCP)
	_ = w.WritePacket(&p)
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xa1}, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewPcapReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Drain at most a bounded number of records; malformed records
		// must error, not panic or loop.
		for i := 0; i < 64; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
