package netpkt

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func samplePacket(proto uint8) Packet {
	return Packet{
		Timestamp: time.Date(2024, 6, 1, 12, 0, 0, 123456000, time.UTC),
		SrcIP:     [4]byte{10, 0, 0, 1},
		DstIP:     [4]byte{192, 168, 1, 2},
		SrcPort:   40000,
		DstPort:   443,
		Proto:     proto,
		TTL:       64,
		TCPFlags:  FlagSYN | FlagACK,
		Payload:   []byte("hello"),
	}
}

func TestMarshalUnmarshalTCP(t *testing.T) {
	p := samplePacket(ProtoTCP)
	frame := p.Marshal()
	got, err := Unmarshal(frame, p.Timestamp, len(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != p.SrcIP || got.DstIP != p.DstIP {
		t.Errorf("IPs: got %v > %v", got.SrcAddr(), got.DstAddr())
	}
	if got.SrcPort != p.SrcPort || got.DstPort != p.DstPort {
		t.Errorf("ports: %d > %d", got.SrcPort, got.DstPort)
	}
	if got.Proto != ProtoTCP || got.TTL != 64 {
		t.Errorf("proto/ttl: %d/%d", got.Proto, got.TTL)
	}
	if got.TCPFlags != (FlagSYN | FlagACK) {
		t.Errorf("flags = %x", got.TCPFlags)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Length != len(frame) {
		t.Errorf("Length = %d, want %d", got.Length, len(frame))
	}
}

func TestMarshalUnmarshalUDP(t *testing.T) {
	p := samplePacket(ProtoUDP)
	frame := p.Marshal()
	got, err := Unmarshal(frame, p.Timestamp, len(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != ProtoUDP {
		t.Errorf("proto = %d", got.Proto)
	}
	if got.SrcPort != 40000 || got.DstPort != 443 {
		t.Errorf("ports: %d > %d", got.SrcPort, got.DstPort)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestMarshalUnmarshalICMP(t *testing.T) {
	p := samplePacket(ProtoICMP)
	frame := p.Marshal()
	got, err := Unmarshal(frame, p.Timestamp, len(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != ProtoICMP {
		t.Errorf("proto = %d", got.Proto)
	}
	if got.SrcPort != 0 || got.DstPort != 0 {
		t.Errorf("ICMP ports should be zero: %d/%d", got.SrcPort, got.DstPort)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}, time.Now(), 3); err == nil {
		t.Error("want error on short frame")
	}
	// Valid length but wrong ethertype.
	pkt := samplePacket(ProtoTCP)
	frame := pkt.Marshal()
	frame[12], frame[13] = 0x86, 0xdd // IPv6
	if _, err := Unmarshal(frame, time.Now(), len(frame)); err == nil {
		t.Error("want error on non-IPv4 ethertype")
	}
	// Truncated TCP header.
	p := samplePacket(ProtoTCP)
	frame = p.Marshal()
	short := frame[:ethHeaderLen+ipv4HeaderLen+4]
	if _, err := Unmarshal(short, time.Now(), len(short)); err == nil {
		t.Error("want error on truncated TCP")
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	p := samplePacket(ProtoTCP)
	frame := p.Marshal()
	ip := frame[ethHeaderLen : ethHeaderLen+ipv4HeaderLen]
	// Recomputing over the header with its checksum field zeroed must
	// reproduce the stored checksum.
	stored := uint16(ip[10])<<8 | uint16(ip[11])
	if got := ipv4Checksum(ip); got != stored {
		t.Errorf("checksum = %04x, want %04x", got, stored)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	pkts := []Packet{samplePacket(ProtoTCP), samplePacket(ProtoUDP)}
	pkts[1].Timestamp = pkts[0].Timestamp.Add(42 * time.Millisecond)
	for i := range pkts {
		if err := w.WritePacket(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.PacketCount != 2 {
		t.Errorf("PacketCount = %d", w.PacketCount)
	}

	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d packets, want 2", len(got))
	}
	if got[0].Proto != ProtoTCP || got[1].Proto != ProtoUDP {
		t.Errorf("protocols = %d, %d", got[0].Proto, got[1].Proto)
	}
	// Microsecond timestamp fidelity.
	if got[0].Timestamp.Sub(pkts[0].Timestamp) > time.Microsecond {
		t.Errorf("timestamp drift: %v vs %v", got[0].Timestamp, pkts[0].Timestamp)
	}
	if d := got[1].Timestamp.Sub(got[0].Timestamp); d != 42*time.Millisecond {
		t.Errorf("inter-packet delta = %v", d)
	}
}

func TestPcapReaderBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, 24))
	if _, err := NewPcapReader(buf); err == nil {
		t.Error("want error on bad magic")
	}
}

func TestPcapReaderShortHeader(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 2, 3})
	if _, err := NewPcapReader(buf); err == nil {
		t.Error("want error on short header")
	}
}

func TestPcapNextEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	p := samplePacket(ProtoTCP)
	if err := w.WritePacket(&p); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestPcapOrigLengthPreserved(t *testing.T) {
	// A packet whose Length exceeds the serialised frame (truncated
	// payload) keeps its original length through the file.
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	p := samplePacket(ProtoUDP)
	p.Length = 1500
	if err := w.WritePacket(&p); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Length != 1500 {
		t.Errorf("Length = %d, want 1500", got.Length)
	}
}

func TestPacketString(t *testing.T) {
	p := samplePacket(ProtoTCP)
	if s := p.String(); s == "" {
		t.Error("empty String")
	}
}

func TestReadAllSkipsNonIPv4(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	p := samplePacket(ProtoTCP)
	if err := w.WritePacket(&p); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	raw := buf.Bytes()
	// Append a hand-built ARP record (ethertype 0x0806).
	arp := make([]byte, 16+60)
	// ts=0, caplen=60, origlen=60.
	arp[8] = 60
	arp[12] = 60
	frame := arp[16:]
	frame[12], frame[13] = 0x08, 0x06
	raw = append(raw, arp...)

	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("ReadAll = %d packets, want 1 (ARP skipped)", len(got))
	}
}

func TestNextValidSkipsUnparseable(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	first := samplePacket(ProtoTCP)
	if err := w.WritePacket(&first); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	raw := buf.Bytes()
	// Splice in a hand-built ARP record (ethertype 0x0806): Next would
	// report a parse error, NextValid must skip it.
	arp := make([]byte, 16+60)
	arp[8] = 60  // caplen (little-endian)
	arp[12] = 60 // origlen
	arp[16+12], arp[16+13] = 0x08, 0x06
	raw = append(raw, arp...)
	// Then a second valid packet after the junk frame.
	var tail bytes.Buffer
	w2 := NewPcapWriter(&tail)
	second := samplePacket(ProtoUDP)
	if err := w2.WritePacket(&second); err != nil {
		t.Fatal(err)
	}
	w2.Flush()
	raw = append(raw, tail.Bytes()[24:]...) // strip the file header

	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got1, err := r.NextValid()
	if err != nil {
		t.Fatal(err)
	}
	if got1.Proto != ProtoTCP {
		t.Errorf("first proto = %d, want TCP", got1.Proto)
	}
	got2, err := r.NextValid()
	if err != nil {
		t.Fatal(err)
	}
	if got2.Proto != ProtoUDP {
		t.Errorf("second proto = %d, want UDP", got2.Proto)
	}
	if _, err := r.NextValid(); err != io.EOF {
		t.Errorf("at end: err = %v, want io.EOF", err)
	}
}

func TestNextValidPropagatesIOErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	p := samplePacket(ProtoTCP)
	if err := w.WritePacket(&p); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	// Truncate mid-record: the reader hits an unexpected EOF, which is
	// an I/O error NextValid must surface rather than swallow.
	raw := buf.Bytes()[:buf.Len()-4]
	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextValid(); err == nil || err == io.EOF {
		t.Errorf("truncated stream: err = %v, want I/O error", err)
	}
}
