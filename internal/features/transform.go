package features

import (
	"fmt"
	"math"
)

// logEps keeps log10 defined at zero.
const logEps = 1e-6

// Preprocess is the model-side feature pipeline: an optional per-feature
// log10 transform for heavy-tailed features (inter-packet delays span
// microseconds to seconds; linear min-max scaling would squash the
// microsecond structure floods live in), followed by min-max scaling.
// Both steps are monotone per feature, so axis-aligned rule boxes in
// model space map back to raw-feature boxes for switch installation.
type Preprocess struct {
	LogMask []bool
	Scaler  *Scaler
	// RawMin/RawMax record the raw-domain training range per feature
	// (before the log), used when sizing switch quantisers.
	RawMin, RawMax []float64
}

// NewFLPreprocess returns the preprocessor for the 13 FL features:
// log10 on total size, the five IPD statistics and the duration.
func NewFLPreprocess() *Preprocess {
	mask := make([]bool, FLDim)
	mask[FLTotalSize] = true
	mask[FLAvgIPD] = true
	mask[FLMinIPD] = true
	mask[FLVarIPD] = true
	mask[FLStdIPD] = true
	mask[FLMaxIPD] = true
	mask[FLDuration] = true
	return &Preprocess{LogMask: mask}
}

// NewPLPreprocess returns the (purely linear) preprocessor for the 4 PL
// features.
func NewPLPreprocess() *Preprocess {
	return &Preprocess{LogMask: make([]bool, PLDim)}
}

// forward applies the log step to one raw value of feature i.
func (p *Preprocess) forward(i int, v float64) float64 {
	if p.LogMask[i] {
		if v < 0 {
			v = 0
		}
		return math.Log10(v + logEps)
	}
	return v
}

// inverse undoes the log step.
func (p *Preprocess) inverse(i int, v float64) float64 {
	if p.LogMask[i] {
		return math.Pow(10, v) - logEps
	}
	return v
}

// Fit learns the scaler from raw training vectors.
func (p *Preprocess) Fit(raw [][]float64) {
	if len(raw) == 0 {
		p.Scaler = &Scaler{}
		return
	}
	dim := len(raw[0])
	if len(p.LogMask) != dim {
		panic(fmt.Sprintf("features: preprocess mask has %d features, data has %d", len(p.LogMask), dim))
	}
	p.RawMin = make([]float64, dim)
	p.RawMax = make([]float64, dim)
	copy(p.RawMin, raw[0])
	copy(p.RawMax, raw[0])
	logged := make([][]float64, len(raw))
	for r, row := range raw {
		lr := make([]float64, dim)
		for i, v := range row {
			if v < p.RawMin[i] {
				p.RawMin[i] = v
			}
			if v > p.RawMax[i] {
				p.RawMax[i] = v
			}
			lr[i] = p.forward(i, v)
		}
		logged[r] = lr
	}
	p.Scaler = FitScaler(logged)
}

// Transform maps one raw vector into model space.
func (p *Preprocess) Transform(raw []float64) []float64 {
	logged := make([]float64, len(raw))
	for i, v := range raw {
		logged[i] = p.forward(i, v)
	}
	return p.Scaler.Transform(logged)
}

// TransformAll maps a batch.
func (p *Preprocess) TransformAll(raw [][]float64) [][]float64 {
	out := make([][]float64, len(raw))
	for i, row := range raw {
		out[i] = p.Transform(row)
	}
	return out
}

// FitTransform fits on raw and returns its transform.
func (p *Preprocess) FitTransform(raw [][]float64) [][]float64 {
	p.Fit(raw)
	return p.TransformAll(raw)
}

// InverseEdge maps a model-space coordinate of feature i back to the
// raw domain (monotone, so rule-box edges map to rule-box edges).
func (p *Preprocess) InverseEdge(i int, v float64) float64 {
	return p.inverse(i, p.Scaler.Min[i]+v*(p.Scaler.Max[i]-p.Scaler.Min[i]))
}

// Dim returns the fitted feature count.
func (p *Preprocess) Dim() int { return len(p.LogMask) }
