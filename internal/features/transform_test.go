package features

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPreprocessLogRoundTrip(t *testing.T) {
	p := &Preprocess{LogMask: []bool{false, true}}
	raw := [][]float64{{0, 0.001}, {10, 0.01}, {50, 0.1}, {100, 1}}
	model := p.FitTransform(raw)
	// Training data maps into [0, 1].
	for _, row := range model {
		for j, v := range row {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("feature %d = %v outside [0,1]", j, v)
			}
		}
	}
	// InverseEdge undoes Transform at the training points.
	for i, row := range model {
		for j, v := range row {
			back := p.InverseEdge(j, v)
			if math.Abs(back-raw[i][j]) > 1e-6*(1+math.Abs(raw[i][j])) {
				t.Errorf("inverse(%d,%d) = %v, want %v", i, j, back, raw[i][j])
			}
		}
	}
}

func TestPreprocessLogSpreadsSmallValues(t *testing.T) {
	// Without the log, 150µs and 25ms collapse after min-max scaling
	// over a [0, 2s] range; with it they separate clearly.
	p := &Preprocess{LogMask: []bool{true}}
	p.Fit([][]float64{{0.0001}, {2.0}})
	a := p.Transform([]float64{0.00015})[0]
	b := p.Transform([]float64{0.025})[0]
	if b-a < 0.3 {
		t.Errorf("log scaling separation = %v, want > 0.3", b-a)
	}
}

func TestPreprocessMonotone(t *testing.T) {
	p := &Preprocess{LogMask: []bool{true}}
	p.Fit([][]float64{{0.001}, {10}})
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return p.Transform([]float64{a})[0] <= p.Transform([]float64{b})[0]+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPreprocessNegativeValuesClampToZeroForLog(t *testing.T) {
	p := &Preprocess{LogMask: []bool{true}}
	p.Fit([][]float64{{0}, {1}})
	if v := p.Transform([]float64{-5})[0]; math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("negative input produced %v", v)
	}
}

func TestPreprocessDimMismatchPanics(t *testing.T) {
	p := &Preprocess{LogMask: []bool{false}}
	defer func() {
		if recover() == nil {
			t.Error("want panic on dim mismatch")
		}
	}()
	p.Fit([][]float64{{1, 2}})
}

func TestPreprocessEmptyFit(t *testing.T) {
	p := NewPLPreprocess()
	p.Fit(nil)
	if p.Scaler == nil {
		t.Error("scaler not initialised")
	}
}

func TestFLPreprocessMask(t *testing.T) {
	p := NewFLPreprocess()
	if p.Dim() != FLDim {
		t.Fatalf("dim = %d", p.Dim())
	}
	// Heavy-tailed features log-scale; counts and sizes stay linear.
	wantLog := map[int]bool{
		FLTotalSize: true, FLAvgIPD: true, FLMinIPD: true,
		FLVarIPD: true, FLStdIPD: true, FLMaxIPD: true, FLDuration: true,
	}
	for i := 0; i < FLDim; i++ {
		if p.LogMask[i] != wantLog[i] {
			t.Errorf("feature %d (%s): log = %v", i, FLNames[i], p.LogMask[i])
		}
	}
}

func TestPLPreprocessAllLinear(t *testing.T) {
	p := NewPLPreprocess()
	for i, m := range p.LogMask {
		if m {
			t.Errorf("PL feature %d log-scaled", i)
		}
	}
}

func TestPreprocessRawRangeRecorded(t *testing.T) {
	p := &Preprocess{LogMask: []bool{false, true}}
	p.Fit([][]float64{{5, 0.1}, {15, 10}})
	if p.RawMin[0] != 5 || p.RawMax[0] != 15 {
		t.Errorf("raw range f0 = [%v, %v]", p.RawMin[0], p.RawMax[0])
	}
	if p.RawMin[1] != 0.1 || p.RawMax[1] != 10 {
		t.Errorf("raw range f1 = [%v, %v]", p.RawMin[1], p.RawMax[1])
	}
}
