package features

import (
	"bytes"
	"math"
	"sort"
	"time"

	"iguard/internal/netpkt"
)

// FLDim is the number of flow-level features (the 13 of §4.2).
const FLDim = 13

// PLDim is the number of packet-level features.
const PLDim = 4

// FL feature vector indices, in the order §4.2 lists them.
const (
	FLPktCount = iota
	FLTotalSize
	FLAvgSize
	FLStdSize
	FLVarSize
	FLMinSize
	FLMaxSize
	FLAvgIPD
	FLMinIPD
	FLVarIPD
	FLStdIPD
	FLMaxIPD
	FLDuration
)

// FLNames lists human-readable FL feature names by index.
var FLNames = [FLDim]string{
	"pkt_count", "total_size", "avg_size", "std_size", "var_size",
	"min_size", "max_size", "avg_ipd", "min_ipd", "var_ipd",
	"std_ipd", "max_ipd", "duration",
}

// PL feature vector indices.
const (
	PLDstPort = iota
	PLProto
	PLLength
	PLTTL
)

// PLNames lists human-readable PL feature names by index.
var PLNames = [PLDim]string{"dst_port", "proto", "length", "ttl"}

// PLVector extracts the 4 packet-level features of one packet.
func PLVector(p *netpkt.Packet) []float64 {
	return PLVectorInto(make([]float64, PLDim), p)
}

// PLVectorInto writes the 4 packet-level features into dst, which must
// have capacity at least PLDim, and returns dst[:PLDim]. It is the
// allocation-free form of PLVector for per-packet hot paths.
func PLVectorInto(dst []float64, p *netpkt.Packet) []float64 {
	dst = dst[:PLDim]
	dst[PLDstPort] = float64(p.DstPort)
	dst[PLProto] = float64(p.Proto)
	dst[PLLength] = float64(p.Length)
	dst[PLTTL] = float64(p.TTL)
	return dst
}

// FlowState accumulates flow-level statistics one packet at a time with
// O(1) state — exactly the registers the switch pipeline maintains
// (count, size sums and extrema, IPD sums and extrema, timestamps).
type FlowState struct {
	Count      int
	SizeSum    float64
	SizeSqSum  float64
	SizeMin    float64
	SizeMax    float64
	IPDSum     float64
	IPDSqSum   float64
	IPDMin     float64
	IPDMax     float64
	FirstSeen  time.Time
	LastSeen   time.Time
	hasPackets bool
}

// Add folds one packet into the state. Packets must arrive in timestamp
// order per flow (the extractor guarantees this).
func (s *FlowState) Add(p *netpkt.Packet) {
	size := float64(p.Length)
	if !s.hasPackets {
		s.hasPackets = true
		s.FirstSeen = p.Timestamp
		s.SizeMin, s.SizeMax = size, size
	} else {
		ipd := p.Timestamp.Sub(s.LastSeen).Seconds()
		if ipd < 0 {
			ipd = 0
		}
		if s.Count == 1 {
			s.IPDMin, s.IPDMax = ipd, ipd
		} else {
			if ipd < s.IPDMin {
				s.IPDMin = ipd
			}
			if ipd > s.IPDMax {
				s.IPDMax = ipd
			}
		}
		s.IPDSum += ipd
		s.IPDSqSum += ipd * ipd
		if size < s.SizeMin {
			s.SizeMin = size
		}
		if size > s.SizeMax {
			s.SizeMax = size
		}
	}
	s.SizeSum += size
	s.SizeSqSum += size * size
	s.Count++
	s.LastSeen = p.Timestamp
}

// IdleFor reports whether the flow has been idle longer than timeout at
// the given instant.
func (s *FlowState) IdleFor(now time.Time, timeout time.Duration) bool {
	return s.hasPackets && now.Sub(s.LastSeen) > timeout
}

// Vector materialises the 13 FL features from the accumulated state.
func (s *FlowState) Vector() []float64 {
	return s.VectorInto(make([]float64, FLDim))
}

// VectorInto materialises the 13 FL features into v, which must have
// capacity at least FLDim, and returns v[:FLDim]. The scratch is fully
// overwritten, so it may be dirty. It is the allocation-free form of
// Vector for per-packet hot paths.
func (s *FlowState) VectorInto(v []float64) []float64 {
	v = v[:FLDim]
	for i := range v {
		v[i] = 0
	}
	if s.Count == 0 {
		return v
	}
	n := float64(s.Count)
	v[FLPktCount] = n
	v[FLTotalSize] = s.SizeSum
	v[FLAvgSize] = s.SizeSum / n
	varSize := s.SizeSqSum/n - v[FLAvgSize]*v[FLAvgSize]
	if varSize < 0 {
		varSize = 0
	}
	v[FLVarSize] = varSize
	v[FLStdSize] = math.Sqrt(varSize)
	v[FLMinSize] = s.SizeMin
	v[FLMaxSize] = s.SizeMax
	if s.Count > 1 {
		m := n - 1 // number of IPD observations
		v[FLAvgIPD] = s.IPDSum / m
		varIPD := s.IPDSqSum/m - v[FLAvgIPD]*v[FLAvgIPD]
		if varIPD < 0 {
			varIPD = 0
		}
		v[FLVarIPD] = varIPD
		v[FLStdIPD] = math.Sqrt(varIPD)
		v[FLMinIPD] = s.IPDMin
		v[FLMaxIPD] = s.IPDMax
	}
	v[FLDuration] = s.LastSeen.Sub(s.FirstSeen).Seconds()
	return v
}

// Sample is one emitted flow observation: its key, FL vector, the PL
// vector of its first packet, and the reason it was emitted.
type Sample struct {
	Key     FlowKey
	FL      []float64
	FirstPL []float64
	// Reason records why the sample was emitted.
	Reason EmitReason
}

// EmitReason enumerates why a flow sample was produced.
type EmitReason int

// Emission reasons.
const (
	// EmitPktCount means the flow reached the packet-count threshold n.
	EmitPktCount EmitReason = iota
	// EmitTimeout means the flow idled past δ.
	EmitTimeout
	// EmitFlush means the extractor was flushed at end of trace.
	EmitFlush
)

// String implements fmt.Stringer.
func (r EmitReason) String() string {
	switch r {
	case EmitPktCount:
		return "pkt_count"
	case EmitTimeout:
		return "timeout"
	default:
		return "flush"
	}
}

// Extractor groups a packet stream into bidirectional flows and emits a
// Sample whenever a flow reaches the packet-count threshold n or idles
// past timeout δ — the switch-tailored truncation of §3.3.1.
type Extractor struct {
	// N is the per-flow packet-count threshold (FL features are emitted
	// at the n-th packet and state is released).
	N int
	// Timeout is δ, the idle timeout.
	Timeout time.Duration

	flows map[FlowKey]*flowEntry
}

type flowEntry struct {
	state   FlowState
	firstPL []float64
}

// NewExtractor returns an extractor with the given thresholds.
func NewExtractor(n int, timeout time.Duration) *Extractor {
	if n <= 0 {
		n = 16
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Extractor{N: n, Timeout: timeout, flows: map[FlowKey]*flowEntry{}}
}

// Feed processes one packet and returns emitted samples (flows that hit
// the packet threshold with this packet, plus any flows the packet's
// timestamp reveals as timed out).
func (e *Extractor) Feed(p *netpkt.Packet) []Sample {
	var out []Sample
	now := p.Timestamp

	// Timeout sweep: flows idle past δ are emitted and cleared. The
	// switch does this with per-slot timestamp registers; a sweep over
	// the (small) active map models it faithfully offline. Emission
	// order is made deterministic (sorted by key) so downstream training
	// is bit-reproducible.
	var expired []FlowKey
	for key, fe := range e.flows { //iguard:sorted keys are collected then sorted before emission
		if fe.state.IdleFor(now, e.Timeout) {
			expired = append(expired, key)
		}
	}
	sortKeys(expired)
	for _, key := range expired {
		fe := e.flows[key]
		out = append(out, Sample{Key: key, FL: fe.state.Vector(), FirstPL: fe.firstPL, Reason: EmitTimeout})
		delete(e.flows, key)
	}

	key := KeyOf(p).Canonical()
	fe, ok := e.flows[key]
	if !ok {
		fe = &flowEntry{firstPL: PLVector(p)}
		e.flows[key] = fe
	}
	fe.state.Add(p)
	if fe.state.Count >= e.N {
		out = append(out, Sample{Key: key, FL: fe.state.Vector(), FirstPL: fe.firstPL, Reason: EmitPktCount})
		delete(e.flows, key)
	}
	return out
}

// Flush emits every remaining flow (end of trace) in deterministic
// (key-sorted) order.
func (e *Extractor) Flush() []Sample {
	keys := make([]FlowKey, 0, len(e.flows))
	for key := range e.flows { //iguard:sorted keys are collected then sorted before emission
		keys = append(keys, key)
	}
	sortKeys(keys)
	var out []Sample
	for _, key := range keys {
		fe := e.flows[key]
		out = append(out, Sample{Key: key, FL: fe.state.Vector(), FirstPL: fe.firstPL, Reason: EmitFlush})
		delete(e.flows, key)
	}
	return out
}

// sortKeys orders flow keys by their canonical byte layout.
func sortKeys(keys []FlowKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i].Bytes(), keys[j].Bytes()
		return bytes.Compare(a[:], b[:]) < 0
	})
}

// Active returns the number of flows currently holding state.
func (e *Extractor) Active() int { return len(e.flows) }

// ExtractAll runs a full packet slice through a fresh extractor and
// returns every emitted sample including the flush.
func ExtractAll(packets []netpkt.Packet, n int, timeout time.Duration) []Sample {
	e := NewExtractor(n, timeout)
	var out []Sample
	for i := range packets {
		out = append(out, e.Feed(&packets[i])...)
	}
	return append(out, e.Flush()...)
}
