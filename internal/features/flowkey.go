// Package features implements iGuard's feature substrate: bidirectional
// 5-tuple flow keys with the bi-hash used for switch register indexing,
// the 13 flow-level (FL) features the Tofino prototype extracts
// (§4.2: packet count, total/average/std/variance/min/max packet size,
// average/min/variance/std/max inter-packet delay, flow duration), the
// 4 packet-level (PL) features used to classify early packets
// (destination port, protocol, length, TTL), flow truncation at a
// per-flow packet-count threshold n and idle timeout δ (§3.3.1), and
// min-max feature scaling.
package features

import (
	"encoding/binary"
	"fmt"

	"iguard/internal/netpkt"
)

// FlowKey is a directional 5-tuple.
type FlowKey struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// KeyOf extracts the directional flow key of a packet.
func KeyOf(p *netpkt.Packet) FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Canonical returns the direction-independent form of the key: the
// endpoint with the lower (IP, port) pair is placed first, so both
// directions of a connection map to the same key — the effect the
// bi-hash achieves in the switch.
func (k FlowKey) Canonical() FlowKey {
	if k.endpointLess() {
		return k
	}
	return k.Reverse()
}

// endpointLess reports whether (SrcIP, SrcPort) <= (DstIP, DstPort).
func (k FlowKey) endpointLess() bool {
	src := binary.BigEndian.Uint32(k.SrcIP[:])
	dst := binary.BigEndian.Uint32(k.DstIP[:])
	if src != dst {
		return src < dst
	}
	return k.SrcPort <= k.DstPort
}

// String renders the key for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d>%d.%d.%d.%d:%d/%d",
		k.SrcIP[0], k.SrcIP[1], k.SrcIP[2], k.SrcIP[3], k.SrcPort,
		k.DstIP[0], k.DstIP[1], k.DstIP[2], k.DstIP[3], k.DstPort, k.Proto)
}

// Bytes serialises the key in the 13-byte digest layout the controller
// receives (src IP, dst IP, src port, dst port, proto).
func (k FlowKey) Bytes() [13]byte {
	var b [13]byte
	copy(b[0:4], k.SrcIP[:])
	copy(b[4:8], k.DstIP[:])
	binary.BigEndian.PutUint16(b[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], k.DstPort)
	b[12] = k.Proto
	return b
}

// FlowKeyFromBytes is the inverse of Bytes: it reassembles a key from
// the 13-byte digest layout. The federation wire protocol uses it to
// decode ANNOUNCE/INSTALL/REMOVE frames.
func FlowKeyFromBytes(b [13]byte) FlowKey {
	var k FlowKey
	copy(k.SrcIP[:], b[0:4])
	copy(k.DstIP[:], b[4:8])
	k.SrcPort = binary.BigEndian.Uint16(b[8:10])
	k.DstPort = binary.BigEndian.Uint16(b[10:12])
	k.Proto = b[12]
	return k
}

// Multiply-mix constants (splitmix64 / murmur3 finalizer family). The
// key hash is a word-parallel multiply-mix rather than a byte-serial
// FNV chain: the 13-byte key loads as two 64-bit endpoint lanes plus
// the protocol byte, so the whole digest is a handful of independent
// multiplies instead of 13 serially-dependent rounds — the difference
// is ~3× on the per-packet path, where the fold runs once per packet.
const (
	foldMulA = 0x9e3779b185ebca87
	foldMulB = 0xc2b2ae3d27d4eb4f
	foldMulC = 0xff51afd7ed558ccd
)

// Fold digests the canonicalised 13-byte key with FNV-1a — the
// seed-independent prefix of the bi-hash. Like BiHash it is symmetric
// (both flow directions fold to the same value). Callers that index
// several seeded tables with one key (the switch's double-hash lookup,
// the serving runtime's shard router) compute the fold once and
// finalise it per seed with BiHashFold, paying the 13-byte walk once
// instead of per table. The rounds read the key fields directly in the
// Bytes layout order, so no serialisation buffer is built.
//
//iguard:hotpath
func (k FlowKey) Fold() uint32 {
	return k.Canonical().FoldCanonical()
}

// CanonicalFoldOf extracts p's canonical flow key and its fold in one
// pass: the two 64-bit endpoint lanes are loaded once and shared
// between the canonical-order comparison and the hash, where calling
// KeyOf + Canonical + FoldCanonical separately reloads them. This is
// the ingest-path form; the three-step spelling remains for callers
// that already hold a key.
//
//iguard:hotpath
func CanonicalFoldOf(p *netpkt.Packet) (FlowKey, uint32) {
	k := FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
	src := uint64(binary.BigEndian.Uint32(k.SrcIP[:]))<<16 | uint64(k.SrcPort)
	dst := uint64(binary.BigEndian.Uint32(k.DstIP[:]))<<16 | uint64(k.DstPort)
	if src > dst {
		k = k.Reverse()
		src, dst = dst, src
	}
	h := src*foldMulA ^ dst*foldMulB ^ uint64(k.Proto)
	h ^= h >> 33
	h *= foldMulC
	h ^= h >> 29
	return k, uint32(h ^ h>>32)
}

// FoldCanonical is Fold without the canonicalisation step: the caller
// asserts k is already in canonical form (as produced by Canonical).
// The serving runtime canonicalises each key exactly once at ingest
// and folds it there; the fold then travels with the packet so neither
// the shard router nor the switch's double-hash lookup walks the key
// bytes again. Calling it on a non-canonical key breaks the bi-hash's
// direction symmetry.
//
//iguard:hotpath
func (k FlowKey) FoldCanonical() uint32 {
	src := uint64(binary.BigEndian.Uint32(k.SrcIP[:]))<<16 | uint64(k.SrcPort)
	dst := uint64(binary.BigEndian.Uint32(k.DstIP[:]))<<16 | uint64(k.DstPort)
	h := src*foldMulA ^ dst*foldMulB ^ uint64(k.Proto)
	h ^= h >> 33
	h *= foldMulC
	h ^= h >> 29
	return uint32(h ^ h>>32)
}

// BiHashFold finalises a Fold with a table seed, decorrelating the
// per-table indices the double-hash scheme derives from one key.
// BiHash(seed) == BiHashFold(Fold(), seed) by construction.
//
//iguard:hotpath
func BiHashFold(fold, seed uint32) uint32 {
	h := (uint64(fold) | uint64(seed)<<32) * foldMulA
	h ^= h >> 33
	h *= foldMulB
	return uint32(h ^ h>>32)
}

// BiHash implements HorusEye's bi-hash: a symmetric hash over the
// canonicalised 5-tuple, so both flow directions index the same switch
// register slot. seed lets the double-hash scheme derive its second
// table index. It factors as a seed-independent key digest (Fold)
// plus a per-seed finaliser (BiHashFold), so callers indexing several
// seeded tables with one key digest it once. Everything is inlined
// multiply-mix arithmetic — hash/fnv's New32a would put an allocation
// and an interface dispatch on the per-packet path.
//
//iguard:hotpath
func (k FlowKey) BiHash(seed uint32) uint32 {
	return BiHashFold(k.Fold(), seed)
}

// Index maps the bi-hash into a table of the given size.
func (k FlowKey) Index(seed uint32, size int) int {
	return IndexFold(k.Fold(), seed, size)
}

// IndexFold maps an already-folded key into a seeded table of the
// given size — the per-table step of a shared-fold lookup.
//
//iguard:hotpath
func IndexFold(fold, seed uint32, size int) int {
	if size <= 0 {
		return 0
	}
	return int(BiHashFold(fold, seed) % uint32(size))
}
