// Package features implements iGuard's feature substrate: bidirectional
// 5-tuple flow keys with the bi-hash used for switch register indexing,
// the 13 flow-level (FL) features the Tofino prototype extracts
// (§4.2: packet count, total/average/std/variance/min/max packet size,
// average/min/variance/std/max inter-packet delay, flow duration), the
// 4 packet-level (PL) features used to classify early packets
// (destination port, protocol, length, TTL), flow truncation at a
// per-flow packet-count threshold n and idle timeout δ (§3.3.1), and
// min-max feature scaling.
package features

import (
	"encoding/binary"
	"fmt"

	"iguard/internal/netpkt"
)

// FlowKey is a directional 5-tuple.
type FlowKey struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// KeyOf extracts the directional flow key of a packet.
func KeyOf(p *netpkt.Packet) FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Canonical returns the direction-independent form of the key: the
// endpoint with the lower (IP, port) pair is placed first, so both
// directions of a connection map to the same key — the effect the
// bi-hash achieves in the switch.
func (k FlowKey) Canonical() FlowKey {
	if k.endpointLess() {
		return k
	}
	return k.Reverse()
}

// endpointLess reports whether (SrcIP, SrcPort) <= (DstIP, DstPort).
func (k FlowKey) endpointLess() bool {
	src := binary.BigEndian.Uint32(k.SrcIP[:])
	dst := binary.BigEndian.Uint32(k.DstIP[:])
	if src != dst {
		return src < dst
	}
	return k.SrcPort <= k.DstPort
}

// String renders the key for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d>%d.%d.%d.%d:%d/%d",
		k.SrcIP[0], k.SrcIP[1], k.SrcIP[2], k.SrcIP[3], k.SrcPort,
		k.DstIP[0], k.DstIP[1], k.DstIP[2], k.DstIP[3], k.DstPort, k.Proto)
}

// Bytes serialises the key in the 13-byte digest layout the controller
// receives (src IP, dst IP, src port, dst port, proto).
func (k FlowKey) Bytes() [13]byte {
	var b [13]byte
	copy(b[0:4], k.SrcIP[:])
	copy(b[4:8], k.DstIP[:])
	binary.BigEndian.PutUint16(b[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], k.DstPort)
	b[12] = k.Proto
	return b
}

// FNV-1a constants, mirroring hash/fnv's 32-bit parameters.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// BiHash implements HorusEye's bi-hash: a symmetric hash over the
// canonicalised 5-tuple, so both flow directions index the same switch
// register slot. seed lets the double-hash scheme derive its second
// table index. The FNV-1a rounds are inlined — hash/fnv's New32a would
// put an allocation and an interface dispatch on the per-packet path —
// and digest the same byte stream (big-endian seed, then the 13-byte
// canonical key), so hash values match the hash/fnv implementation
// bit for bit.
//
//iguard:hotpath
func (k FlowKey) BiHash(seed uint32) uint32 {
	c := k.Canonical()
	h := uint32(fnvOffset32)
	h = (h ^ (seed >> 24)) * fnvPrime32
	h = (h ^ (seed >> 16 & 0xff)) * fnvPrime32
	h = (h ^ (seed >> 8 & 0xff)) * fnvPrime32
	h = (h ^ (seed & 0xff)) * fnvPrime32
	b := c.Bytes()
	for _, x := range b {
		h = (h ^ uint32(x)) * fnvPrime32
	}
	return h
}

// Index maps the bi-hash into a table of the given size.
func (k FlowKey) Index(seed uint32, size int) int {
	if size <= 0 {
		return 0
	}
	return int(k.BiHash(seed) % uint32(size))
}
