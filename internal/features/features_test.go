package features

import (
	"math"
	"testing"
	"time"

	"iguard/internal/netpkt"
)

func pkt(src, dst byte, sport, dport uint16, proto uint8, length int, at time.Duration) netpkt.Packet {
	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	return netpkt.Packet{
		Timestamp: base.Add(at),
		SrcIP:     [4]byte{10, 0, 0, src},
		DstIP:     [4]byte{10, 0, 0, dst},
		SrcPort:   sport,
		DstPort:   dport,
		Proto:     proto,
		TTL:       64,
		Length:    length,
	}
}

func TestFlowKeyCanonicalSymmetric(t *testing.T) {
	p := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, 0)
	fwd := KeyOf(&p)
	rev := fwd.Reverse()
	if fwd.Canonical() != rev.Canonical() {
		t.Error("forward and reverse keys canonicalise differently")
	}
	if fwd.Canonical() != fwd {
		t.Error("lower endpoint first: canonical of (1→2) should be itself")
	}
	if rev.Canonical() == rev {
		t.Error("canonical of (2→1) should be flipped")
	}
}

func TestFlowKeySamePortsDifferentIPs(t *testing.T) {
	a := FlowKey{SrcIP: [4]byte{10, 0, 0, 5}, DstIP: [4]byte{10, 0, 0, 3}, SrcPort: 80, DstPort: 80, Proto: 6}
	if a.Canonical().SrcIP != [4]byte{10, 0, 0, 3} {
		t.Error("canonical should order by IP first")
	}
	// Same IPs: order by port.
	b := FlowKey{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 1}, SrcPort: 9000, DstPort: 80, Proto: 6}
	if b.Canonical().SrcPort != 80 {
		t.Error("canonical should order by port when IPs equal")
	}
}

func TestBiHashSymmetric(t *testing.T) {
	p := pkt(1, 2, 1234, 443, netpkt.ProtoTCP, 100, 0)
	k := KeyOf(&p)
	if k.BiHash(0) != k.Reverse().BiHash(0) {
		t.Error("bi-hash not direction independent")
	}
	if k.BiHash(0) == k.BiHash(1) {
		t.Error("different seeds should (almost surely) differ")
	}
	if k.Index(0, 1024) < 0 || k.Index(0, 1024) >= 1024 {
		t.Error("Index out of range")
	}
	if k.Index(0, 0) != 0 {
		t.Error("Index with size 0 should be 0")
	}
}

func TestFlowKeyBytesLayout(t *testing.T) {
	k := FlowKey{SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8}, SrcPort: 0x1234, DstPort: 0x5678, Proto: 17}
	b := k.Bytes()
	if b[0] != 1 || b[7] != 8 {
		t.Errorf("IP layout wrong: %v", b)
	}
	if b[8] != 0x12 || b[9] != 0x34 || b[10] != 0x56 || b[11] != 0x78 {
		t.Errorf("port layout wrong: %v", b)
	}
	if b[12] != 17 {
		t.Errorf("proto = %d", b[12])
	}
	if k.String() == "" {
		t.Error("empty String")
	}
}

func TestFlowStateVector(t *testing.T) {
	var s FlowState
	p1 := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, 0)
	p2 := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 200, 10*time.Millisecond)
	p3 := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 300, 30*time.Millisecond)
	s.Add(&p1)
	s.Add(&p2)
	s.Add(&p3)
	v := s.Vector()
	if v[FLPktCount] != 3 {
		t.Errorf("count = %v", v[FLPktCount])
	}
	if v[FLTotalSize] != 600 {
		t.Errorf("total = %v", v[FLTotalSize])
	}
	if v[FLAvgSize] != 200 {
		t.Errorf("avg = %v", v[FLAvgSize])
	}
	if v[FLMinSize] != 100 || v[FLMaxSize] != 300 {
		t.Errorf("min/max = %v/%v", v[FLMinSize], v[FLMaxSize])
	}
	// Sizes 100,200,300: population variance = 6666.67.
	if math.Abs(v[FLVarSize]-6666.666) > 1 {
		t.Errorf("var = %v", v[FLVarSize])
	}
	if math.Abs(v[FLStdSize]-math.Sqrt(v[FLVarSize])) > 1e-9 {
		t.Errorf("std² != var")
	}
	// IPDs: 10ms, 20ms → avg 15ms.
	if math.Abs(v[FLAvgIPD]-0.015) > 1e-9 {
		t.Errorf("avg ipd = %v", v[FLAvgIPD])
	}
	if math.Abs(v[FLMinIPD]-0.010) > 1e-9 || math.Abs(v[FLMaxIPD]-0.020) > 1e-9 {
		t.Errorf("ipd min/max = %v/%v", v[FLMinIPD], v[FLMaxIPD])
	}
	if math.Abs(v[FLDuration]-0.030) > 1e-9 {
		t.Errorf("duration = %v", v[FLDuration])
	}
}

func TestFlowStateSinglePacket(t *testing.T) {
	var s FlowState
	p := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, 0)
	s.Add(&p)
	v := s.Vector()
	if v[FLPktCount] != 1 || v[FLAvgIPD] != 0 || v[FLDuration] != 0 {
		t.Errorf("single packet vector = %v", v)
	}
	if v[FLStdSize] != 0 {
		t.Errorf("single packet size std = %v", v[FLStdSize])
	}
}

func TestFlowStateEmptyVector(t *testing.T) {
	var s FlowState
	v := s.Vector()
	for i, x := range v {
		if x != 0 {
			t.Errorf("empty state feature %d = %v", i, x)
		}
	}
	if len(v) != FLDim {
		t.Errorf("dim = %d", len(v))
	}
}

func TestPLVector(t *testing.T) {
	p := pkt(1, 2, 1000, 443, netpkt.ProtoUDP, 120, 0)
	v := PLVector(&p)
	if len(v) != PLDim {
		t.Fatalf("PL dim = %d", len(v))
	}
	if v[PLDstPort] != 443 || v[PLProto] != 17 || v[PLLength] != 120 || v[PLTTL] != 64 {
		t.Errorf("PL vector = %v", v)
	}
}

func TestExtractorPacketCountEmission(t *testing.T) {
	e := NewExtractor(3, time.Minute)
	var got []Sample
	for i := 0; i < 3; i++ {
		p := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, time.Duration(i)*time.Millisecond)
		got = append(got, e.Feed(&p)...)
	}
	if len(got) != 1 {
		t.Fatalf("samples = %d, want 1", len(got))
	}
	if got[0].Reason != EmitPktCount {
		t.Errorf("reason = %v", got[0].Reason)
	}
	if got[0].FL[FLPktCount] != 3 {
		t.Errorf("count = %v", got[0].FL[FLPktCount])
	}
	if e.Active() != 0 {
		t.Errorf("active flows after emit = %d", e.Active())
	}
	if len(got[0].FirstPL) != PLDim {
		t.Errorf("FirstPL dim = %d", len(got[0].FirstPL))
	}
}

func TestExtractorBidirectionalAggregation(t *testing.T) {
	e := NewExtractor(4, time.Minute)
	// Two packets each direction: one bidirectional flow of 4 packets.
	ps := []netpkt.Packet{
		pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, 0),
		pkt(2, 1, 80, 1000, netpkt.ProtoTCP, 200, time.Millisecond),
		pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, 2*time.Millisecond),
		pkt(2, 1, 80, 1000, netpkt.ProtoTCP, 200, 3*time.Millisecond),
	}
	var got []Sample
	for i := range ps {
		got = append(got, e.Feed(&ps[i])...)
	}
	if len(got) != 1 {
		t.Fatalf("samples = %d, want 1 (bidirectional aggregation)", len(got))
	}
	if got[0].FL[FLPktCount] != 4 {
		t.Errorf("count = %v, want 4", got[0].FL[FLPktCount])
	}
}

func TestExtractorTimeout(t *testing.T) {
	e := NewExtractor(100, 50*time.Millisecond)
	p1 := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, 0)
	e.Feed(&p1)
	// Unrelated packet 1s later triggers the timeout sweep.
	p2 := pkt(3, 4, 2000, 81, netpkt.ProtoTCP, 100, time.Second)
	got := e.Feed(&p2)
	if len(got) != 1 {
		t.Fatalf("samples = %d, want 1 timeout emission", len(got))
	}
	if got[0].Reason != EmitTimeout {
		t.Errorf("reason = %v", got[0].Reason)
	}
	if e.Active() != 1 { // only the new flow remains
		t.Errorf("active = %d", e.Active())
	}
}

func TestExtractorFlush(t *testing.T) {
	e := NewExtractor(100, time.Minute)
	p1 := pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, 0)
	p2 := pkt(5, 6, 1000, 80, netpkt.ProtoTCP, 100, 0)
	e.Feed(&p1)
	e.Feed(&p2)
	got := e.Flush()
	if len(got) != 2 {
		t.Fatalf("flush = %d samples, want 2", len(got))
	}
	for _, s := range got {
		if s.Reason != EmitFlush {
			t.Errorf("reason = %v", s.Reason)
		}
	}
	if e.Active() != 0 {
		t.Errorf("active after flush = %d", e.Active())
	}
}

func TestExtractAll(t *testing.T) {
	var ps []netpkt.Packet
	for i := 0; i < 10; i++ {
		ps = append(ps, pkt(1, 2, 1000, 80, netpkt.ProtoTCP, 100, time.Duration(i)*time.Millisecond))
	}
	got := ExtractAll(ps, 4, time.Minute)
	// 10 packets, threshold 4: two full emissions + flush of remaining 2.
	if len(got) != 3 {
		t.Fatalf("samples = %d, want 3", len(got))
	}
	if got[0].FL[FLPktCount] != 4 || got[1].FL[FLPktCount] != 4 || got[2].FL[FLPktCount] != 2 {
		t.Errorf("counts = %v, %v, %v", got[0].FL[FLPktCount], got[1].FL[FLPktCount], got[2].FL[FLPktCount])
	}
}

func TestExtractorDefaults(t *testing.T) {
	e := NewExtractor(0, 0)
	if e.N <= 0 || e.Timeout <= 0 {
		t.Errorf("defaults not applied: %+v", e)
	}
}

func TestEmitReasonString(t *testing.T) {
	for _, r := range []EmitReason{EmitPktCount, EmitTimeout, EmitFlush} {
		if r.String() == "" {
			t.Error("empty reason string")
		}
	}
}

func TestScalerRoundTrip(t *testing.T) {
	x := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	s := FitScaler(x)
	got := s.Transform([]float64{5, 20})
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("Transform = %v", got)
	}
	inv := s.Inverse(got)
	if math.Abs(inv[0]-5) > 1e-9 || math.Abs(inv[1]-20) > 1e-9 {
		t.Errorf("Inverse = %v", inv)
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d", s.Dim())
	}
}

func TestScalerExtrapolates(t *testing.T) {
	s := FitScaler([][]float64{{0}, {10}})
	if got := s.Transform([]float64{20}); got[0] != 2 {
		t.Errorf("out-of-range value = %v, want 2 (not clamped)", got[0])
	}
}

func TestScalerConstantFeature(t *testing.T) {
	s := FitScaler([][]float64{{7, 1}, {7, 2}})
	got := s.Transform([]float64{7, 1.5})
	if got[0] != 0 {
		t.Errorf("constant feature scaled to %v, want 0", got[0])
	}
}

func TestScalerPanicsOnDimMismatch(t *testing.T) {
	s := FitScaler([][]float64{{1, 2}})
	defer func() {
		if recover() == nil {
			t.Error("want panic on dim mismatch")
		}
	}()
	s.Transform([]float64{1})
}

func TestScalerTransformAll(t *testing.T) {
	s := FitScaler([][]float64{{0}, {10}})
	got := s.TransformAll([][]float64{{0}, {5}, {10}})
	if got[1][0] != 0.5 {
		t.Errorf("TransformAll = %v", got)
	}
}

func TestScalerEmptyFit(t *testing.T) {
	s := FitScaler(nil)
	if s.Dim() != 0 {
		t.Errorf("empty scaler dim = %d", s.Dim())
	}
}
