package features

import "fmt"

// Scaler performs min-max normalisation into [0, 1], fit on the benign
// training set and applied everywhere else (the usual pre-processing
// before autoencoder training).
type Scaler struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// FitScaler learns per-feature minima and maxima from x.
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return &Scaler{}
	}
	dim := len(x[0])
	s := &Scaler{Min: make([]float64, dim), Max: make([]float64, dim)}
	copy(s.Min, x[0])
	copy(s.Max, x[0])
	for _, row := range x[1:] {
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s
}

// Transform scales one vector into [0, 1] per feature; values outside
// the fitted range extrapolate beyond [0, 1] deliberately so anomalies
// remain distinguishable (clamping would erase their magnitude).
func (s *Scaler) Transform(x []float64) []float64 {
	if len(x) != len(s.Min) {
		panic(fmt.Sprintf("features: scaler fitted on %d features, got %d", len(s.Min), len(x)))
	}
	out := make([]float64, len(x))
	for j, v := range x {
		span := s.Max[j] - s.Min[j]
		if span <= 0 {
			out[j] = 0
			continue
		}
		out[j] = (v - s.Min[j]) / span
	}
	return out
}

// TransformAll scales a batch.
func (s *Scaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}

// Inverse maps a scaled vector back to raw feature units.
func (s *Scaler) Inverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = s.Min[j] + v*(s.Max[j]-s.Min[j])
	}
	return out
}

// Dim returns the fitted feature count.
func (s *Scaler) Dim() int { return len(s.Min) }
