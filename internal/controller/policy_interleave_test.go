package controller

import (
	"testing"

	"iguard/internal/features"
	"iguard/internal/switchsim"
)

// TestPolicyInterleavings drives one scripted interleaving of digest
// installs, Touch refreshes, federation applies (Install/Remove), and
// Flush through both eviction policies, pinning the exact eviction
// order each produces. The script is chosen so every divergence point
// between LRU and FIFO is exercised: Touch (refresh vs no-op),
// re-Install of a resident key (recency bump vs no-op), and evictions
// triggered from both the digest path and the apply path.
func TestPolicyInterleavings(t *testing.T) {
	type step struct {
		digest  byte // OnDigest(key(n), malicious) when nonzero
		touch   byte
		install byte // federation apply path
		remove  byte
	}
	script := []step{
		{digest: 1}, {digest: 2}, {digest: 3}, // fill to capacity (3)
		{touch: 1},   // LRU refreshes k1; FIFO ignores
		{digest: 4},  // evicts: LRU k2, FIFO k1
		{install: 5}, // apply-path install evicts: LRU k3, FIFO k2
		{install: 4}, // resident: LRU recency bump, FIFO no-op
		{digest: 6},  // evicts: LRU k1, FIFO k3
		{remove: 5},  // explicit withdrawal on both
		{digest: 4},  // resident refresh (LRU) / no-op (FIFO)
	}
	cases := []struct {
		policy      EvictionPolicy
		wantEvicted []byte // in order
		wantFinal   []byte // resident after the script
	}{
		{LRU, []byte{2, 3, 1}, []byte{4, 6}},
		{FIFO, []byte{1, 2, 3}, []byte{4, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.policy.String(), func(t *testing.T) {
			fs := newFakeSwitch()
			c := New(fs, 3, tc.policy)
			var evictions []features.FlowKey
			var observedInstalls int
			c.SetObserver(func(ev Event) {
				switch ev.Op {
				case OpEvict:
					evictions = append(evictions, ev.Key)
				case OpInstall:
					observedInstalls++
				}
			})
			for _, s := range script {
				switch {
				case s.digest != 0:
					c.OnDigest(switchsim.Digest{Key: key(s.digest), Label: 1})
				case s.touch != 0:
					c.Touch(key(s.touch))
				case s.install != 0:
					c.Install(key(s.install))
				case s.remove != 0:
					if !c.Remove(key(s.remove)) {
						t.Fatalf("Remove(key(%d)) found nothing", s.remove)
					}
				}
			}

			if len(evictions) != len(tc.wantEvicted) {
				t.Fatalf("%d evictions %v, want %d", len(evictions), evictions, len(tc.wantEvicted))
			}
			for i, want := range tc.wantEvicted {
				if evictions[i] != key(want).Canonical() {
					t.Errorf("eviction %d = %v, want key(%d)", i, evictions[i], want)
				}
			}
			if got := c.BlacklistLen(); got != len(tc.wantFinal) {
				t.Fatalf("resident %d entries, want %d", got, len(tc.wantFinal))
			}
			for _, want := range tc.wantFinal {
				if !fs.installed[key(want).Canonical()] {
					t.Errorf("key(%d) missing from data plane", want)
				}
			}
			for _, gone := range tc.wantEvicted {
				if fs.installed[key(gone).Canonical()] {
					t.Errorf("evicted key(%d) still in data plane", gone)
				}
			}

			// Digest installs announce themselves (5 of them: k1,k2,k3,
			// k4,k6); apply-path installs stay silent — the loop-free
			// property federation relies on.
			if observedInstalls != 5 {
				t.Errorf("observer saw %d installs, want 5 (apply-path installs must stay silent)", observedInstalls)
			}
			st := c.Stats()
			if st.RulesInstalled != 6 { // 5 digest + 1 apply (k5)
				t.Errorf("RulesInstalled=%d want 6", st.RulesInstalled)
			}
			if st.RulesEvicted != 3 {
				t.Errorf("RulesEvicted=%d want 3", st.RulesEvicted)
			}
			if st.RulesRemoved != 1 {
				t.Errorf("RulesRemoved=%d want 1", st.RulesRemoved)
			}

			// Flush wipes the remainder, counts them as evictions, and
			// fires no observer events (it is an apply path too).
			evBefore := len(evictions)
			if n := c.Flush(); n != len(tc.wantFinal) {
				t.Fatalf("Flush removed %d, want %d", n, len(tc.wantFinal))
			}
			if len(evictions) != evBefore {
				t.Errorf("Flush fired %d observer events, want 0", len(evictions)-evBefore)
			}
			if c.BlacklistLen() != 0 || len(fs.installed) != 0 {
				t.Errorf("entries survived Flush: len=%d dataplane=%d", c.BlacklistLen(), len(fs.installed))
			}
			if got := c.Stats().RulesEvicted; got != 3+len(tc.wantFinal) {
				t.Errorf("RulesEvicted=%d after Flush, want %d", got, 3+len(tc.wantFinal))
			}
		})
	}
}

// TestLRUTouchAcrossFlush pins that Flush resets recency state: a
// Touch on a flushed key must not resurrect stale list nodes.
func TestLRUTouchAcrossFlush(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 2, LRU)
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(2), Label: 1})
	if n := c.Flush(); n != 2 {
		t.Fatalf("Flush removed %d, want 2", n)
	}
	c.Touch(key(1)) // must be a no-op, not a use of a freed element
	if got := c.BlacklistLen(); got != 0 {
		t.Fatalf("BlacklistLen=%d after post-flush Touch, want 0", got)
	}
	// The table works normally afterwards.
	c.OnDigest(switchsim.Digest{Key: key(3), Label: 1})
	c.Touch(key(3))
	c.OnDigest(switchsim.Digest{Key: key(4), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(5), Label: 1})
	if fs.installed[key(3).Canonical()] {
		t.Error("key(3) should be the LRU victim after the post-flush refill")
	}
	if !fs.installed[key(4).Canonical()] || !fs.installed[key(5).Canonical()] {
		t.Error("wrong survivors after post-flush refill")
	}
}
