// Package controller implements iGuard's control plane: it consumes
// flow-class digests from the data plane, installs blacklist rules for
// malicious flows, clears the flow's stateful storage, and evicts old
// blacklist entries under FIFO or LRU policy when the table fills
// (Fig. 1 steps 10a/10b and §3.3.2 "Controller").
package controller

import (
	"container/list"
	"sync"

	"iguard/internal/features"
	"iguard/internal/switchsim"
)

// EvictionPolicy selects how blacklist entries are retired when the
// table is full.
type EvictionPolicy int

// Supported policies.
const (
	FIFO EvictionPolicy = iota
	LRU
)

// String implements fmt.Stringer.
func (p EvictionPolicy) String() string {
	if p == LRU {
		return "lru"
	}
	return "fifo"
}

// Switch is the data-plane surface the controller drives. *switchsim.
// Switch satisfies it.
type Switch interface {
	InstallBlacklist(key features.FlowKey) bool
	RemoveBlacklist(key features.FlowKey)
	ClearFlow(key features.FlowKey)
}

// Stats counts controller activity.
type Stats struct {
	DigestsReceived int
	BytesReceived   int
	RulesInstalled  int
	RulesEvicted    int
	RulesRemoved    int
	StorageCleared  int
}

// Op classifies an observed blacklist transition.
type Op int

// Observed operations. OpInstall is a digest-driven install decided by
// this controller; OpEvict is a capacity eviction (whatever triggered
// it); OpRemove is an explicit withdrawal via Remove; OpFlush is a
// whole-table Flush (Key is the zero key).
const (
	OpInstall Op = iota
	OpEvict
	OpRemove
	OpFlush
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpInstall:
		return "install"
	case OpEvict:
		return "evict"
	case OpRemove:
		return "remove"
	case OpFlush:
		return "flush"
	}
	return "op(?)"
}

// Event is one observed blacklist transition; Key is canonical.
type Event struct {
	Op  Op
	Key features.FlowKey
}

// Controller is the control-plane agent. It is safe for concurrent use
// (digests may arrive from multiple pipelines).
//
// Locking contract: mu guards order, index, and stats — exported
// methods acquire it around their bookkeeping, and methods with the
// *Locked suffix require it held. sw, capacity, and policy are set by
// New and never written afterwards, so they may be read without the
// lock. Data-plane calls (ClearFlow, InstallBlacklist,
// RemoveBlacklist) are never made while mu is held: they dispatch
// through the Switch interface to an implementation whose latency the
// controller cannot bound, and holding mu across them would stall
// every other digest pipeline. OnDigest decides the actions under mu
// and applies them after unlocking; the Switch implementation is
// invoked from whichever goroutine delivered the digest, so it must
// either tolerate that (switchsim.Switch delivers digests
// synchronously from its owning goroutine, which bounces these calls
// back onto it — see its ownership contract) or carry its own locks.
type Controller struct {
	mu       sync.Mutex
	sw       Switch
	capacity int
	policy   EvictionPolicy
	order    *list.List // of features.FlowKey, front = next eviction
	index    map[features.FlowKey]*list.Element
	stats    Stats
	obs      func(Event)
}

// New returns a controller managing the given switch with a blacklist
// capacity and eviction policy.
func New(sw Switch, capacity int, policy EvictionPolicy) *Controller {
	if capacity <= 0 {
		capacity = 8192
	}
	return &Controller{
		sw:       sw,
		capacity: capacity,
		policy:   policy,
		order:    list.New(),
		index:    map[features.FlowKey]*list.Element{},
	}
}

// SetObserver registers an observer for blacklist transitions this
// controller performs. Events fire after the corresponding data-plane
// call, on the goroutine that triggered the transition, outside the
// controller's lock; the observer must be cheap and non-blocking (the
// serving runtime invokes it on shard goroutines). Digest-driven
// installs and evictions fire; externally applied operations (Install,
// Remove, Flush — the federation apply path) do not announce
// themselves, which is what keeps a federated fleet loop-free: only
// locally decided installs propagate outward.
func (c *Controller) SetObserver(fn func(Event)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = fn
}

// OnDigest implements switchsim.DigestSink: it clears the flow's
// stateful storage and, for malicious flows, installs a blacklist rule,
// evicting the oldest (FIFO) or least-recently-confirmed (LRU) entry
// when full.
func (c *Controller) OnDigest(d switchsim.Digest) {
	key := d.Key.Canonical()

	// Decide under the lock, act after it: the bookkeeping (order,
	// index, stats) is mu-guarded, but the data-plane calls are
	// interface dispatches of unbounded latency and must not extend
	// the critical section.
	c.mu.Lock()
	c.stats.DigestsReceived++
	c.stats.BytesReceived += switchsim.DigestBytes
	c.stats.StorageCleared++
	install := false
	var evicted []features.FlowKey
	if d.Label == 1 {
		if el, ok := c.index[key]; ok {
			// Already blacklisted: LRU refreshes recency, FIFO does not.
			if c.policy == LRU {
				c.order.MoveToBack(el)
			}
		} else {
			if c.order.Len() >= c.capacity {
				if victim, ok := c.popVictimLocked(); ok {
					evicted = append(evicted, victim)
					c.stats.RulesEvicted++
				}
			}
			c.index[key] = c.order.PushBack(key)
			c.stats.RulesInstalled++
			install = true
		}
	}
	obs := c.obs
	c.mu.Unlock()

	c.sw.ClearFlow(d.Key)
	for _, victim := range evicted {
		c.sw.RemoveBlacklist(victim)
	}
	if install {
		c.sw.InstallBlacklist(key)
	}
	if obs != nil {
		for _, victim := range evicted {
			obs(Event{Op: OpEvict, Key: victim})
		}
		if install {
			obs(Event{Op: OpInstall, Key: key})
		}
	}
}

// Install records an externally decided blacklist entry — the
// federation apply path: a rule another switch's controller installed
// and the hub propagated here. The bookkeeping is identical to a
// malicious digest (capacity evictions included, and LRU treats a
// re-install as a recency refresh) minus the flow-storage clear, and
// the observer is deliberately not told about the install itself (see
// SetObserver) though any eviction it forces does fire OpEvict.
// Returns whether the entry was newly installed.
func (c *Controller) Install(key features.FlowKey) bool {
	key = key.Canonical()
	c.mu.Lock()
	install := false
	var evicted []features.FlowKey
	if el, ok := c.index[key]; ok {
		if c.policy == LRU {
			c.order.MoveToBack(el)
		}
	} else {
		if c.order.Len() >= c.capacity {
			if victim, ok := c.popVictimLocked(); ok {
				evicted = append(evicted, victim)
				c.stats.RulesEvicted++
			}
		}
		c.index[key] = c.order.PushBack(key)
		c.stats.RulesInstalled++
		install = true
	}
	obs := c.obs
	c.mu.Unlock()

	for _, victim := range evicted {
		c.sw.RemoveBlacklist(victim)
	}
	if install {
		c.sw.InstallBlacklist(key)
	}
	if obs != nil {
		for _, victim := range evicted {
			obs(Event{Op: OpEvict, Key: victim})
		}
	}
	return install
}

// Remove withdraws one blacklist entry from the bookkeeping and the
// data plane — the apply path for a propagated removal. Like Install
// it stays silent toward the observer. Returns whether the entry was
// present.
func (c *Controller) Remove(key features.FlowKey) bool {
	key = key.Canonical()
	c.mu.Lock()
	el, ok := c.index[key]
	if ok {
		c.order.Remove(el)
		delete(c.index, key)
		c.stats.RulesRemoved++
	}
	c.mu.Unlock()

	if ok {
		c.sw.RemoveBlacklist(key)
	}
	return ok
}

// popVictimLocked removes and returns the front (next-to-evict) entry
// from the bookkeeping; the caller issues the data-plane removal after
// releasing the lock. Caller holds the lock.
func (c *Controller) popVictimLocked() (features.FlowKey, bool) {
	front := c.order.Front()
	if front == nil {
		return features.FlowKey{}, false
	}
	key := front.Value.(features.FlowKey)
	c.order.Remove(front)
	delete(c.index, key)
	return key, true
}

// Flush removes every tracked blacklist entry from both the
// bookkeeping and the data plane, returning the number removed. It
// exists for model hot-swap: when a replacement model changes what
// "malicious" means, the operator may want verdicts issued under the
// old rules withdrawn rather than aging out. Removals count as
// evictions in Stats. Like OnDigest, the data-plane calls happen
// after the lock is released.
func (c *Controller) Flush() int {
	c.mu.Lock()
	victims := make([]features.FlowKey, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		victims = append(victims, el.Value.(features.FlowKey))
	}
	c.order.Init()
	c.index = map[features.FlowKey]*list.Element{}
	c.stats.RulesEvicted += len(victims)
	c.mu.Unlock()

	for _, v := range victims {
		c.sw.RemoveBlacklist(v)
	}
	return len(victims)
}

// Touch records data-plane activity for an already blacklisted flow
// (red-path hits) so LRU keeps hot attackers blacklisted.
func (c *Controller) Touch(key features.FlowKey) {
	if c.policy != LRU {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key.Canonical()]; ok {
		c.order.MoveToBack(el)
	}
}

// Stats returns a snapshot of controller activity.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// BlacklistLen returns the number of tracked blacklist entries.
func (c *Controller) BlacklistLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
