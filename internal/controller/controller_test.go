package controller

import (
	"sync"
	"testing"

	"iguard/internal/features"
	"iguard/internal/switchsim"
)

// fakeSwitch records controller-driven operations.
type fakeSwitch struct {
	mu        sync.Mutex
	installed map[features.FlowKey]bool
	cleared   int
}

func newFakeSwitch() *fakeSwitch {
	return &fakeSwitch{installed: map[features.FlowKey]bool{}}
}

func (f *fakeSwitch) InstallBlacklist(key features.FlowKey) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.installed[key.Canonical()] = true
	return true
}

func (f *fakeSwitch) RemoveBlacklist(key features.FlowKey) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.installed, key.Canonical())
}

func (f *fakeSwitch) ClearFlow(features.FlowKey) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cleared++
}

func key(n byte) features.FlowKey {
	return features.FlowKey{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{23, 1, 0, 1}, SrcPort: 1000, DstPort: 443, Proto: 6}
}

func TestMaliciousDigestInstallsRule(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 10, FIFO)
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	if !fs.installed[key(1).Canonical()] {
		t.Error("blacklist rule not installed")
	}
	if fs.cleared != 1 {
		t.Errorf("storage cleared %d times", fs.cleared)
	}
	s := c.Stats()
	if s.DigestsReceived != 1 || s.RulesInstalled != 1 || s.StorageCleared != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesReceived != switchsim.DigestBytes {
		t.Errorf("bytes = %d", s.BytesReceived)
	}
}

func TestBenignDigestOnlyClears(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 10, FIFO)
	c.OnDigest(switchsim.Digest{Key: key(2), Label: 0})
	if len(fs.installed) != 0 {
		t.Error("benign digest installed a rule")
	}
	if fs.cleared != 1 {
		t.Errorf("cleared = %d", fs.cleared)
	}
}

func TestFIFOEviction(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 2, FIFO)
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(2), Label: 1})
	// Re-digest key(1): FIFO does not refresh its position.
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(3), Label: 1})
	if fs.installed[key(1).Canonical()] {
		t.Error("FIFO should evict key(1) first")
	}
	if !fs.installed[key(2).Canonical()] || !fs.installed[key(3).Canonical()] {
		t.Error("wrong survivors")
	}
	if c.BlacklistLen() != 2 {
		t.Errorf("len = %d", c.BlacklistLen())
	}
	if got := c.Stats().RulesEvicted; got != 1 {
		t.Errorf("evicted = %d", got)
	}
}

func TestLRUEvictionRefreshesOnDigest(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 2, LRU)
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(2), Label: 1})
	// Refresh key(1): now key(2) is least recent.
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(3), Label: 1})
	if fs.installed[key(2).Canonical()] {
		t.Error("LRU should evict key(2)")
	}
	if !fs.installed[key(1).Canonical()] {
		t.Error("refreshed key(1) evicted")
	}
}

func TestLRUTouch(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 2, LRU)
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(2), Label: 1})
	c.Touch(key(1))
	c.OnDigest(switchsim.Digest{Key: key(3), Label: 1})
	if fs.installed[key(2).Canonical()] {
		t.Error("touched key(1) should have survived over key(2)")
	}
}

func TestTouchIgnoredUnderFIFO(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 2, FIFO)
	c.OnDigest(switchsim.Digest{Key: key(1), Label: 1})
	c.OnDigest(switchsim.Digest{Key: key(2), Label: 1})
	c.Touch(key(1))
	c.OnDigest(switchsim.Digest{Key: key(3), Label: 1})
	if fs.installed[key(1).Canonical()] {
		t.Error("FIFO must ignore Touch")
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(newFakeSwitch(), 0, FIFO)
	if c.capacity <= 0 {
		t.Error("default capacity not applied")
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || LRU.String() != "lru" {
		t.Error("policy strings")
	}
}

func TestEndToEndWithRealSwitch(t *testing.T) {
	sw := switchsim.New(switchsim.Config{Slots: 32, PktThreshold: 4, BlacklistCapacity: 16})
	c := New(sw, 16, LRU)
	c.OnDigest(switchsim.Digest{Key: key(9), Label: 1})
	if sw.BlacklistLen() != 1 {
		t.Errorf("switch blacklist = %d", sw.BlacklistLen())
	}
}

func TestConcurrentDigests(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 64, LRU)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base byte) {
			defer wg.Done()
			for j := 0; j < 32; j++ {
				c.OnDigest(switchsim.Digest{Key: key(base*32 + byte(j)), Label: j % 2})
			}
		}(byte(i))
	}
	wg.Wait()
	if got := c.Stats().DigestsReceived; got != 256 {
		t.Errorf("digests = %d", got)
	}
}

// TestConcurrentMixedOps hammers every exported method from competing
// goroutines; run with -race to validate the locking contract.
func TestConcurrentMixedOps(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 32, LRU)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func(base byte) {
			defer wg.Done()
			for j := 0; j < 64; j++ {
				c.OnDigest(switchsim.Digest{Key: key(base*64 + byte(j)), Label: 1})
			}
		}(byte(i))
		go func(base byte) {
			defer wg.Done()
			for j := 0; j < 64; j++ {
				c.Touch(key(base*64 + byte(j)))
			}
		}(byte(i))
		go func() {
			defer wg.Done()
			for j := 0; j < 64; j++ {
				_ = c.Stats()
				_ = c.BlacklistLen()
			}
		}()
	}
	wg.Wait()
	if got := c.Stats().DigestsReceived; got != 256 {
		t.Errorf("digests = %d", got)
	}
	if got := c.BlacklistLen(); got != 32 {
		t.Errorf("blacklist = %d, want capacity 32", got)
	}
}

func TestFlushRemovesAllEntries(t *testing.T) {
	fs := newFakeSwitch()
	c := New(fs, 10, LRU)
	for i := byte(1); i <= 5; i++ {
		c.OnDigest(switchsim.Digest{Key: key(i), Label: 1})
	}
	if c.BlacklistLen() != 5 || len(fs.installed) != 5 {
		t.Fatalf("setup: tracked=%d installed=%d", c.BlacklistLen(), len(fs.installed))
	}
	if n := c.Flush(); n != 5 {
		t.Fatalf("Flush removed %d entries, want 5", n)
	}
	if c.BlacklistLen() != 0 || len(fs.installed) != 0 {
		t.Fatalf("after flush: tracked=%d installed=%d", c.BlacklistLen(), len(fs.installed))
	}
	if got := c.Stats().RulesEvicted; got != 5 {
		t.Fatalf("RulesEvicted=%d want 5", got)
	}
	// Idempotent on empty, and the table keeps working afterwards.
	if n := c.Flush(); n != 0 {
		t.Fatalf("second Flush removed %d entries, want 0", n)
	}
	c.OnDigest(switchsim.Digest{Key: key(9), Label: 1})
	if c.BlacklistLen() != 1 || !fs.installed[key(9).Canonical()] {
		t.Fatal("controller unusable after Flush")
	}
}
