// Package autoencoder implements the autoencoder family the iGuard paper
// evaluates as guidance candidates (App. A): a plain symmetric
// autoencoder, the asymmetric "Magnifier"-style autoencoder that the
// paper selects, and a variational autoencoder. It also provides the
// weighted ensemble with per-member RMSE thresholds used for
// Autoencoders.predict (§3.2.1).
//
// The original Magnifier (HorusEye, USENIX Security '23) uses dilated
// convolutions over 2-D traffic statistics; switch data planes cannot
// extract those, and the guidance signal iGuard consumes is only the
// scalar reconstruction error over the 13 flow-level features. We
// therefore substitute an asymmetric dense autoencoder (deep encoder,
// shallow decoder), which preserves the behaviour that matters: a tight
// benign manifold giving low benign / high attack reconstruction error.
package autoencoder

import (
	"context"
	"fmt"
	"math/rand"

	"iguard/internal/mathx"
	"iguard/internal/nn"
	"iguard/internal/parallel"
)

// Model is a trainable reconstruction model producing per-sample
// reconstruction errors (RMSE per the paper's RE_u definition).
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// Fit trains on benign feature vectors.
	Fit(x [][]float64, opts TrainOptions)
	// ReconstructionError returns RE(x) = sqrt(mean((AE(x)-x)²)).
	ReconstructionError(x []float64) float64
}

// TrainOptions controls Fit for every model in this package.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Rand      *rand.Rand
	// Parallelism bounds the worker count when ensemble members train
	// concurrently (0 selects GOMAXPROCS). Member results are identical
	// for every value: each member's seed is drawn from Rand up front,
	// in member order, before any training starts.
	Parallelism int
	// Stop, when non-nil, is probed between epochs of every member;
	// a true return abandons the remaining epochs (used for context
	// cancellation).
	Stop func() bool
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 30
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.LR <= 0 {
		o.LR = 0.005
	}
	if o.Rand == nil {
		o.Rand = mathx.NewRand(1)
	}
	return o
}

// Dense is a feed-forward autoencoder over m features.
type Dense struct {
	name string
	net  *nn.Network
	dim  int
}

// NewSymmetric builds the conventional symmetric autoencoder
// m → m/2 → latent → m/2 → m used as the plain "AE" candidate.
func NewSymmetric(r *rand.Rand, dim int) *Dense {
	h := maxInt(dim/2, 2)
	latent := maxInt(dim/4, 2)
	net := nn.NewNetwork(r,
		[]int{dim, h, latent, h, dim},
		[]nn.Activation{nn.Tanh, nn.Tanh, nn.Tanh, nn.Identity},
		nn.DefaultAdam(0.005))
	return &Dense{name: "AE", net: net, dim: dim}
}

// NewMagnifier builds the asymmetric autoencoder standing in for
// Magnifier [15]: a deep encoder (m → 2m → m → m/2 → latent) and a
// single-layer decoder (latent → m). The asymmetry concentrates
// capacity in the encoder exactly as Magnifier does.
func NewMagnifier(r *rand.Rand, dim int) *Dense {
	latent := maxInt(dim/4, 2)
	net := nn.NewNetwork(r,
		[]int{dim, 2 * dim, dim, maxInt(dim/2, 2), latent, dim},
		[]nn.Activation{nn.LeakyReLU, nn.LeakyReLU, nn.LeakyReLU, nn.Tanh, nn.Identity},
		nn.DefaultAdam(0.005))
	return &Dense{name: "Magnifier", net: net, dim: dim}
}

// Name implements Model.
func (d *Dense) Name() string { return d.name }

// Fit implements Model.
func (d *Dense) Fit(x [][]float64, opts TrainOptions) {
	opts = opts.withDefaults()
	d.net.Fit(x, x, nn.FitOptions{Epochs: opts.Epochs, BatchSize: opts.BatchSize, Rand: opts.Rand, Stop: opts.Stop})
}

// Reconstruct returns the autoencoder output for x.
func (d *Dense) Reconstruct(x []float64) []float64 { return d.net.Predict(x) }

// ReconstructionError implements Model.
func (d *Dense) ReconstructionError(x []float64) float64 {
	if len(x) != d.dim {
		panic(fmt.Sprintf("autoencoder: sample has %d features, model expects %d", len(x), d.dim))
	}
	return mathx.RMSE(d.Reconstruct(x), x)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Member pairs an ensemble member with its weight w_u and RMSE threshold
// T_u from §3.2.1.
type Member struct {
	Model     Model
	Weight    float64
	Threshold float64
}

// Ensemble is the paper's weighted autoencoder ensemble:
// predict(x) = 1{ Σ_u w_u · 1{RE_u(x) > T_u} > 0.5 }.
type Ensemble struct {
	Members []Member
}

// NewEnsemble creates an ensemble with uniform weights over the given
// models; thresholds start at zero and should be set by Calibrate.
func NewEnsemble(models ...Model) *Ensemble {
	e := &Ensemble{}
	if len(models) == 0 {
		return e
	}
	w := 1.0 / float64(len(models))
	for _, m := range models {
		e.Members = append(e.Members, Member{Model: m, Weight: w})
	}
	return e
}

// Fit trains every member independently on the benign training set, as
// the paper prescribes, deriving per-member seeds from opts.Rand so the
// members do not share a random stream. Members train concurrently
// under opts.Parallelism; seeds are drawn serially in member order
// first, so results are byte-identical for every worker count (and to
// the historical serial trainer).
func (e *Ensemble) Fit(x [][]float64, opts TrainOptions) {
	opts = opts.withDefaults()
	memberOpts := make([]TrainOptions, len(e.Members))
	for i := range e.Members {
		memberOpts[i] = opts
		memberOpts[i].Rand = mathx.NewRand(opts.Rand.Int63())
	}
	parallel.Do(opts.Parallelism, len(e.Members), func(i int) {
		e.Members[i].Model.Fit(x, memberOpts[i])
	})
}

// FitContext is Fit with cooperative cancellation: members abandon
// their remaining epochs once ctx is done and FitContext returns
// ctx.Err(). A nil error means every member trained to completion.
func (e *Ensemble) FitContext(ctx context.Context, x [][]float64, opts TrainOptions) error {
	opts.Stop = func() bool { return ctx.Err() != nil }
	e.Fit(x, opts)
	return ctx.Err()
}

// MemberErrors returns every member's reconstruction errors over x
// (outer index: member, matching Members order).
func (e *Ensemble) MemberErrors(x [][]float64) [][]float64 {
	out := make([][]float64, len(e.Members))
	for i := range e.Members {
		res := make([]float64, len(x))
		for j, v := range x {
			res[j] = e.Members[i].Model.ReconstructionError(v)
		}
		out[i] = res
	}
	return out
}

// Calibrate sets each member's RMSE threshold T_u to the given quantile
// of its reconstruction errors over benign validation samples. The paper
// grid-searches T; a high benign quantile (e.g. 0.95) is the standard
// operating point.
func (e *Ensemble) Calibrate(benign [][]float64, quantile float64) {
	for i, res := range e.MemberErrors(benign) {
		e.Members[i].Threshold = mathx.Quantile(res, quantile)
	}
}

// SetThresholds installs per-member RMSE thresholds (same order as
// Members) — the direct form of Calibrate for callers that computed
// quantiles themselves, e.g. from a shared sorted error slice.
func (e *Ensemble) SetThresholds(ths []float64) {
	if len(ths) != len(e.Members) {
		panic(fmt.Sprintf("autoencoder: %d thresholds for %d members", len(ths), len(e.Members)))
	}
	for i := range e.Members {
		e.Members[i].Threshold = ths[i]
	}
}

// WithThresholds returns a calibrated shallow copy of the ensemble:
// the trained models are shared (inference on them is stateless and
// race-free), while weights and thresholds are copied. Grid-search
// candidates evaluating different calibration quantiles concurrently
// each take their own view instead of re-calibrating the shared
// ensemble in place.
func (e *Ensemble) WithThresholds(ths []float64) *Ensemble {
	if len(ths) != len(e.Members) {
		panic(fmt.Sprintf("autoencoder: %d thresholds for %d members", len(ths), len(e.Members)))
	}
	view := &Ensemble{Members: append([]Member(nil), e.Members...)}
	for i := range view.Members {
		view.Members[i].Threshold = ths[i]
	}
	return view
}

// Vote returns Σ_u w_u · 1{RE_u(x) > T_u}, the ensemble's weighted vote
// mass in [0, Σw].
func (e *Ensemble) Vote(x []float64) float64 {
	v := 0.0
	for _, m := range e.Members {
		if m.Model.ReconstructionError(x) > m.Threshold {
			v += m.Weight
		}
	}
	return v
}

// Predict implements Autoencoders.predict(x) from §3.2.1: 1 when the
// weighted vote exceeds 0.5, else 0.
func (e *Ensemble) Predict(x []float64) int {
	if e.Vote(x) > 0.5 {
		return 1
	}
	return 0
}

// Score returns a continuous anomaly score for AUC computation: the
// weighted mean of threshold-normalised reconstruction errors, so that
// 1.0 sits exactly at the decision surface of a single-member ensemble.
func (e *Ensemble) Score(x []float64) float64 {
	s := 0.0
	for _, m := range e.Members {
		t := m.Threshold
		if t <= 0 {
			t = 1e-9
		}
		s += m.Weight * (m.Model.ReconstructionError(x) / t)
	}
	return s
}

// MeanReconstructionError returns the weighted mean RE over members,
// used when embedding expected reconstruction errors into leaves.
func (e *Ensemble) MeanReconstructionError(x []float64) float64 {
	s := 0.0
	for _, m := range e.Members {
		s += m.Weight * m.Model.ReconstructionError(x)
	}
	return s
}

// LabelLeafByMeanRE implements Eq. 6: given the per-member expected
// reconstruction errors of a leaf (same order as Members), it returns 1
// when Σ w_u·1{RE_leaf_u > T_u} > 0.5.
func (e *Ensemble) LabelLeafByMeanRE(meanRE []float64) int {
	if len(meanRE) != len(e.Members) {
		panic(fmt.Sprintf("autoencoder: %d leaf REs for %d members", len(meanRE), len(e.Members)))
	}
	v := 0.0
	for i, m := range e.Members {
		if meanRE[i] > m.Threshold {
			v += m.Weight
		}
	}
	if v > 0.5 {
		return 1
	}
	return 0
}

// PerMemberErrors returns RE_u(x) for every member in order.
func (e *Ensemble) PerMemberErrors(x []float64) []float64 {
	out := make([]float64, len(e.Members))
	for i, m := range e.Members {
		out[i] = m.Model.ReconstructionError(x)
	}
	return out
}
