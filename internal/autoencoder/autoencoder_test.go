package autoencoder

import (
	"math"
	"testing"

	"iguard/internal/mathx"
)

// benignCloud draws n samples from a correlated low-dimensional manifold
// embedded in dim dimensions — a stand-in for benign flow features.
func benignCloud(seed int64, n, dim int) [][]float64 {
	r := mathx.NewRand(seed)
	out := make([][]float64, n)
	for i := range out {
		a, b := r.Float64(), r.Float64()
		v := make([]float64, dim)
		for j := range v {
			switch j % 3 {
			case 0:
				v[j] = a + 0.02*r.NormFloat64()
			case 1:
				v[j] = b + 0.02*r.NormFloat64()
			default:
				v[j] = 0.5*(a+b) + 0.02*r.NormFloat64()
			}
		}
		out[i] = v
	}
	return out
}

// anomalyCloud draws n samples far off the benign manifold.
func anomalyCloud(seed int64, n, dim int) [][]float64 {
	r := mathx.NewRand(seed)
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = 2 + r.Float64() // outside the [0,1] manifold
		}
		out[i] = v
	}
	return out
}

func trainOpts(seed int64) TrainOptions {
	return TrainOptions{Epochs: 40, BatchSize: 32, LR: 0.005, Rand: mathx.NewRand(seed)}
}

func testSeparates(t *testing.T, m Model) {
	t.Helper()
	dim := 6
	benign := benignCloud(1, 400, dim)
	m.Fit(benign, trainOpts(2))
	benignTest := benignCloud(3, 50, dim)
	attack := anomalyCloud(4, 50, dim)
	be, ae := 0.0, 0.0
	for _, x := range benignTest {
		be += m.ReconstructionError(x)
	}
	for _, x := range attack {
		ae += m.ReconstructionError(x)
	}
	be /= 50
	ae /= 50
	if ae <= 2*be {
		t.Errorf("%s: attack RE %v not well above benign RE %v", m.Name(), ae, be)
	}
}

func TestSymmetricAESeparates(t *testing.T) {
	r := mathx.NewRand(10)
	testSeparates(t, NewSymmetric(r, 6))
}

func TestMagnifierSeparates(t *testing.T) {
	r := mathx.NewRand(11)
	testSeparates(t, NewMagnifier(r, 6))
}

func TestVAESeparates(t *testing.T) {
	r := mathx.NewRand(12)
	testSeparates(t, NewVAE(r, 6, 2))
}

func TestModelNames(t *testing.T) {
	r := mathx.NewRand(1)
	if NewSymmetric(r, 4).Name() != "AE" {
		t.Error("symmetric name")
	}
	if NewMagnifier(r, 4).Name() != "Magnifier" {
		t.Error("magnifier name")
	}
	if NewVAE(r, 4, 2).Name() != "VAE" {
		t.Error("vae name")
	}
}

func TestReconstructionErrorDimensionPanic(t *testing.T) {
	r := mathx.NewRand(1)
	ae := NewSymmetric(r, 4)
	defer func() {
		if recover() == nil {
			t.Error("want panic on wrong dimension")
		}
	}()
	ae.ReconstructionError([]float64{1, 2})
}

func TestEnsemblePredictAndVote(t *testing.T) {
	dim := 6
	r := mathx.NewRand(20)
	e := NewEnsemble(NewSymmetric(r, dim), NewMagnifier(r, dim))
	if len(e.Members) != 2 {
		t.Fatalf("members = %d", len(e.Members))
	}
	for _, m := range e.Members {
		if math.Abs(m.Weight-0.5) > 1e-12 {
			t.Errorf("weight = %v, want 0.5", m.Weight)
		}
	}
	benign := benignCloud(21, 400, dim)
	e.Fit(benign, trainOpts(22))
	e.Calibrate(benignCloud(23, 100, dim), 0.95)
	for i, m := range e.Members {
		if m.Threshold <= 0 {
			t.Errorf("member %d threshold = %v, want > 0", i, m.Threshold)
		}
	}
	// Benign samples mostly predicted 0, anomalies mostly 1.
	benignHits, attackHits := 0, 0
	benignTest := benignCloud(24, 40, dim)
	attackTest := anomalyCloud(25, 40, dim)
	for _, x := range benignTest {
		benignHits += e.Predict(x)
	}
	for _, x := range attackTest {
		attackHits += e.Predict(x)
	}
	if benignHits > 8 {
		t.Errorf("benign false positives = %d/40", benignHits)
	}
	if attackHits < 36 {
		t.Errorf("attack detections = %d/40", attackHits)
	}
}

func TestEnsembleVoteBounds(t *testing.T) {
	dim := 4
	r := mathx.NewRand(30)
	e := NewEnsemble(NewSymmetric(r, dim), NewSymmetric(r, dim), NewSymmetric(r, dim))
	x := []float64{0.1, 0.2, 0.3, 0.4}
	v := e.Vote(x)
	if v < 0 || v > 1+1e-9 {
		t.Errorf("vote = %v outside [0,1]", v)
	}
}

func TestEmptyEnsemble(t *testing.T) {
	e := NewEnsemble()
	if got := e.Predict([]float64{1}); got != 0 {
		t.Errorf("empty ensemble predict = %d, want 0", got)
	}
	if got := e.Score([]float64{1}); got != 0 {
		t.Errorf("empty ensemble score = %v, want 0", got)
	}
}

func TestLabelLeafByMeanRE(t *testing.T) {
	dim := 4
	r := mathx.NewRand(31)
	e := NewEnsemble(NewSymmetric(r, dim), NewSymmetric(r, dim))
	e.Members[0].Threshold = 1.0
	e.Members[1].Threshold = 1.0
	if got := e.LabelLeafByMeanRE([]float64{2, 2}); got != 1 {
		t.Errorf("both above threshold: label = %d, want 1", got)
	}
	if got := e.LabelLeafByMeanRE([]float64{0.5, 0.5}); got != 0 {
		t.Errorf("both below threshold: label = %d, want 0", got)
	}
	// Exactly 0.5 vote mass is NOT > 0.5, so label 0.
	if got := e.LabelLeafByMeanRE([]float64{2, 0.5}); got != 0 {
		t.Errorf("half vote: label = %d, want 0", got)
	}
}

func TestLabelLeafByMeanREPanicsOnLengthMismatch(t *testing.T) {
	r := mathx.NewRand(32)
	e := NewEnsemble(NewSymmetric(r, 4))
	defer func() {
		if recover() == nil {
			t.Error("want panic on RE length mismatch")
		}
	}()
	e.LabelLeafByMeanRE([]float64{1, 2})
}

func TestPerMemberErrorsOrder(t *testing.T) {
	dim := 4
	r := mathx.NewRand(33)
	e := NewEnsemble(NewSymmetric(r, dim), NewMagnifier(r, dim))
	x := []float64{0.1, 0.2, 0.3, 0.4}
	errs := e.PerMemberErrors(x)
	if len(errs) != 2 {
		t.Fatalf("errors length = %d", len(errs))
	}
	for i, m := range e.Members {
		if errs[i] != m.Model.ReconstructionError(x) {
			t.Errorf("member %d error mismatch", i)
		}
	}
}

func TestScoreMonotoneInError(t *testing.T) {
	dim := 6
	r := mathx.NewRand(40)
	e := NewEnsemble(NewMagnifier(r, dim))
	benign := benignCloud(41, 300, dim)
	e.Fit(benign, trainOpts(42))
	e.Calibrate(benignCloud(43, 80, dim), 0.95)
	benignScore := e.Score(benignCloud(44, 1, dim)[0])
	attackScore := e.Score(anomalyCloud(45, 1, dim)[0])
	if attackScore <= benignScore {
		t.Errorf("attack score %v <= benign score %v", attackScore, benignScore)
	}
}

func TestEnsembleFitDeterminism(t *testing.T) {
	build := func() float64 {
		dim := 4
		r := mathx.NewRand(50)
		e := NewEnsemble(NewSymmetric(r, dim))
		e.Fit(benignCloud(51, 100, dim), TrainOptions{Epochs: 5, BatchSize: 16, LR: 0.01, Rand: mathx.NewRand(52)})
		return e.MeanReconstructionError([]float64{0.3, 0.3, 0.3, 0.3})
	}
	if a, b := build(), build(); a != b {
		t.Errorf("ensemble training not deterministic: %v vs %v", a, b)
	}
}

func TestVAEReconstructionImproves(t *testing.T) {
	dim := 6
	r := mathx.NewRand(60)
	v := NewVAE(r, dim, 2)
	benign := benignCloud(61, 300, dim)
	before := 0.0
	for _, x := range benign[:50] {
		before += v.ReconstructionError(x)
	}
	v.Fit(benign, trainOpts(62))
	after := 0.0
	for _, x := range benign[:50] {
		after += v.ReconstructionError(x)
	}
	if after >= before {
		t.Errorf("VAE training did not improve reconstruction: %v -> %v", before/50, after/50)
	}
}
