package autoencoder

import (
	"math"
	"math/rand"

	"iguard/internal/mathx"
	"iguard/internal/nn"
)

// VAE is a variational autoencoder trained with the reparameterisation
// trick: encoder → (μ, log σ²), z = μ + ε·σ, decoder → x̂, loss =
// MSE(x̂, x) + β·KL(q(z|x) ‖ N(0, I)). The paper evaluates a VAE (with a
// Magnifier-like body) as a guidance candidate in Appendix A.
type VAE struct {
	dim, latent int
	beta        float64

	encHidden *nn.Dense // dim → h
	encOut    *nn.Dense // h → 2·latent (μ ‖ logvar)
	decHidden *nn.Dense // latent → h
	decOut    *nn.Dense // h → dim

	cfg  nn.AdamConfig
	step int
}

// NewVAE builds a VAE over dim features with the given latent size.
func NewVAE(r *rand.Rand, dim, latent int) *VAE {
	if latent <= 0 {
		latent = maxInt(dim/4, 2)
	}
	h := maxInt(dim, 4)
	return &VAE{
		dim: dim, latent: latent, beta: 0.05,
		encHidden: nn.NewDense(r, dim, h, nn.Tanh),
		encOut:    nn.NewDense(r, h, 2*latent, nn.Identity),
		decHidden: nn.NewDense(r, latent, h, nn.Tanh),
		decOut:    nn.NewDense(r, h, dim, nn.Identity),
		cfg:       nn.DefaultAdam(0.005),
	}
}

// Name implements Model.
func (v *VAE) Name() string { return "VAE" }

// encode runs the encoder and splits its output into μ and log σ².
func (v *VAE) encode(x *nn.Matrix) (mu, logvar *nn.Matrix) {
	h := v.encHidden.Forward(x)
	out := v.encOut.Forward(h)
	mu = nn.NewMatrix(out.Rows, v.latent)
	logvar = nn.NewMatrix(out.Rows, v.latent)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		copy(mu.Row(i), row[:v.latent])
		copy(logvar.Row(i), row[v.latent:])
	}
	return mu, logvar
}

// decode maps latent codes to reconstructions.
func (v *VAE) decode(z *nn.Matrix) *nn.Matrix {
	return v.decOut.Forward(v.decHidden.Forward(z))
}

// trainBatch runs one optimisation step and returns the batch loss.
func (v *VAE) trainBatch(x *nn.Matrix, r *rand.Rand) float64 {
	n := x.Rows
	mu, logvar := v.encode(x)

	// Reparameterise: z = μ + ε·exp(logvar/2).
	eps := nn.NewMatrix(n, v.latent)
	z := nn.NewMatrix(n, v.latent)
	for i := range z.Data {
		eps.Data[i] = r.NormFloat64()
		z.Data[i] = mu.Data[i] + eps.Data[i]*math.Exp(0.5*logvar.Data[i])
	}

	xhat := v.decode(z)

	// Reconstruction loss and gradient.
	recLoss := 0.0
	gradXhat := nn.NewMatrix(n, v.dim)
	scale := 2.0 / float64(v.dim)
	for i := range xhat.Data {
		d := xhat.Data[i] - x.Data[i]
		recLoss += d * d
		gradXhat.Data[i] = scale * d
	}
	recLoss /= float64(len(xhat.Data))

	// KL term and its gradients w.r.t. μ and logvar.
	klLoss := 0.0
	for i := range mu.Data {
		klLoss += -0.5 * (1 + logvar.Data[i] - mu.Data[i]*mu.Data[i] - math.Exp(logvar.Data[i]))
	}
	klLoss /= float64(n)

	// Backprop through decoder.
	gDecHidden, gWDecOut, gBDecOut := v.decOut.Backward(gradXhat)
	gradZ, gWDecHidden, gBDecHidden := v.decHidden.Backward(gDecHidden)

	// Gradients into the encoder's (μ ‖ logvar) output.
	gradEncOut := nn.NewMatrix(n, 2*v.latent)
	betaPerN := v.beta / float64(n)
	for i := 0; i < n; i++ {
		gz := gradZ.Row(i)
		gm := gradEncOut.Row(i)
		for j := 0; j < v.latent; j++ {
			sigma := math.Exp(0.5 * logvar.At(i, j))
			// dL/dμ = dL/dz + β·μ/n
			gm[j] = gz[j] + betaPerN*mu.At(i, j)
			// dL/dlogvar = dL/dz·ε·σ/2 + β·(exp(logvar)−1)/(2n)
			gm[v.latent+j] = gz[j]*eps.At(i, j)*sigma*0.5 +
				betaPerN*0.5*(math.Exp(logvar.At(i, j))-1)
		}
	}

	gEncHidden, gWEncOut, gBEncOut := v.encOut.Backward(gradEncOut)
	_, gWEncHidden, gBEncHidden := v.encHidden.Backward(gEncHidden)

	v.step++
	v.decOut.Update(v.cfg, v.step, n, gWDecOut, gBDecOut)
	v.decHidden.Update(v.cfg, v.step, n, gWDecHidden, gBDecHidden)
	v.encOut.Update(v.cfg, v.step, n, gWEncOut, gBEncOut)
	v.encHidden.Update(v.cfg, v.step, n, gWEncHidden, gBEncHidden)

	return recLoss + v.beta*klLoss
}

// Fit implements Model.
func (v *VAE) Fit(x [][]float64, opts TrainOptions) {
	opts = opts.withDefaults()
	v.cfg = nn.DefaultAdam(opts.LR)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < opts.Epochs; e++ {
		mathx.Shuffle(opts.Rand, idx)
		for start := 0; start < len(idx); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := make([][]float64, 0, end-start)
			for _, i := range idx[start:end] {
				batch = append(batch, x[i])
			}
			v.trainBatch(nn.FromRows(batch), opts.Rand)
		}
	}
}

// Reconstruct returns the deterministic reconstruction (z = μ) of x.
func (v *VAE) Reconstruct(x []float64) []float64 {
	mu, _ := v.encode(nn.FromRows([][]float64{x}))
	out := v.decode(mu)
	res := make([]float64, out.Cols)
	copy(res, out.Row(0))
	return res
}

// ReconstructionError implements Model using the mean-latent decode.
func (v *VAE) ReconstructionError(x []float64) float64 {
	return mathx.RMSE(v.Reconstruct(x), x)
}
