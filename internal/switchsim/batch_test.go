package switchsim

import (
	"fmt"
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/mathx"
	"iguard/internal/netpkt"
)

// mixedTrace builds a deterministic trace that exercises every packet
// path: a handful of flows (port-benign and port-malicious, small and
// large packets) interleaved over a tiny slot table, with idle gaps
// long enough to trip the timeout arms mid-trace.
func mixedTrace(n int) []netpkt.Packet {
	r := mathx.NewRand(0x8a7c)
	pkts := make([]netpkt.Packet, n)
	at := time.Duration(0)
	for i := range pkts {
		flow := r.Intn(12)
		port := uint16(443)
		if flow%3 == 2 {
			port = 9999 // outside the PL whitelist's dst-port range
		}
		length := 100
		if flow%4 == 3 {
			length = 1400 // above the FL whitelist's avg-size ceiling
		}
		p := mkPkt(byte(flow), uint16(1000+flow), length, at)
		p.DstPort = port
		pkts[i] = p
		at += time.Duration(1+r.Intn(3)) * time.Millisecond
		if r.Intn(40) == 0 {
			at += 200 * time.Millisecond // beyond the 50ms test timeout
		}
	}
	return pkts
}

// digestRecorder captures the digest stream so the differential test
// can compare control-plane output, not just per-packet decisions.
type digestRecorder struct{ digests []Digest }

func (d *digestRecorder) OnDigest(dg Digest) { d.digests = append(d.digests, dg) }

func batchTestSwitch(sink DigestSink) *Switch {
	return New(Config{
		Slots:         4, // tiny: forces orange collisions
		PktThreshold:  3,
		Timeout:       50 * time.Millisecond,
		FLRules:       flRulesAllowSmall(),
		PLRules:       plRulesAllowPort(),
		DropMalicious: true,
		Sink:          sink,
		SweepInterval: 100 * time.Millisecond,
	})
}

// TestProcessBatchMatchesProcessPacket is the tentpole equivalence pin:
// at every batch size, with and without caller-supplied flow keys,
// ProcessBatch must produce byte-identical decisions, counters, and
// digest streams to running ProcessPacket over the same trace.
func TestProcessBatchMatchesProcessPacket(t *testing.T) {
	trace := mixedTrace(2000)

	var refSink digestRecorder
	ref := batchTestSwitch(&refSink)
	want := make([]Decision, len(trace))
	for i := range trace {
		want[i] = ref.ProcessPacket(&trace[i])
	}
	if ref.Counters.PathCounts[PathOrange] == 0 || ref.Counters.Sweeps == 0 {
		t.Fatalf("trace too tame (counters %+v); the equivalence check is vacuous", ref.Counters)
	}

	for _, batch := range []int{1, 7, 64, 1024} {
		// derive: ProcessBatch computes keys and folds itself; keys:
		// the caller precomputes canonical keys (serve's router does);
		// folds: the caller precomputes keys and their folds too — the
		// full serve hand-off shape.
		for _, mode := range []string{"derive", "keys", "folds"} {
			t.Run(fmt.Sprintf("batch=%d/mode=%s", batch, mode), func(t *testing.T) {
				var sink digestRecorder
				sw := batchTestSwitch(&sink)
				got := make([]Decision, len(trace))
				keys := make([]features.FlowKey, batch)
				folds := make([]uint32, batch)
				for off := 0; off < len(trace); off += batch {
					end := off + batch
					if end > len(trace) {
						end = len(trace)
					}
					chunk := trace[off:end]
					var ks []features.FlowKey
					var fs []uint32
					if mode != "derive" {
						ks = keys[:len(chunk)]
						for i := range chunk {
							ks[i] = features.KeyOf(&chunk[i]).Canonical()
						}
					}
					if mode == "folds" {
						fs = folds[:len(chunk)]
						for i := range ks {
							fs[i] = ks[i].FoldCanonical()
						}
					}
					sw.ProcessBatch(chunk, ks, fs, got[off:end])
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("packet %d: batch decision %+v, single %+v", i, got[i], want[i])
					}
				}
				if sw.Counters != ref.Counters {
					t.Errorf("counters diverge: batch %+v, single %+v", sw.Counters, ref.Counters)
				}
				if len(sink.digests) != len(refSink.digests) {
					t.Fatalf("digest count %d, want %d", len(sink.digests), len(refSink.digests))
				}
				for i := range sink.digests {
					if sink.digests[i] != refSink.digests[i] {
						t.Fatalf("digest %d: batch %+v, single %+v", i, sink.digests[i], refSink.digests[i])
					}
				}
			})
		}
	}
}

// TestProcessBatchNoPLRules covers the havePL=false arm: with no PL
// whitelist there is nothing to precompute, and the batch walk must
// still match the per-packet pipeline.
func TestProcessBatchNoPLRules(t *testing.T) {
	trace := mixedTrace(600)
	mk := func() *Switch {
		return New(Config{
			Slots:         4,
			PktThreshold:  3,
			Timeout:       50 * time.Millisecond,
			FLRules:       flRulesAllowSmall(),
			DropMalicious: true,
		})
	}
	ref := mk()
	want := make([]Decision, len(trace))
	for i := range trace {
		want[i] = ref.ProcessPacket(&trace[i])
	}
	sw := mk()
	got := make([]Decision, len(trace))
	for off := 0; off < len(trace); off += 7 {
		end := off + 7
		if end > len(trace) {
			end = len(trace)
		}
		sw.ProcessBatch(trace[off:end], nil, nil, got[off:end])
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d: batch decision %+v, single %+v", i, got[i], want[i])
		}
	}
	if sw.Counters != ref.Counters {
		t.Errorf("counters diverge: batch %+v, single %+v", sw.Counters, ref.Counters)
	}
}

// TestProcessBatchAllocationFree pins the batch hot path at zero
// steady-state allocations once the batch scratch has grown.
func TestProcessBatchAllocationFree(t *testing.T) {
	sw := newTestSwitch(2, time.Hour) // blue/purple cycling, nil sink
	const n = 64
	pkts := make([]netpkt.Packet, n)
	for i := range pkts {
		pkts[i] = mkPkt(byte(i%4), uint16(2000+i%4), 100, time.Duration(i)*time.Millisecond)
	}
	out := make([]Decision, n)
	sw.ProcessBatch(pkts, nil, nil, out) // warm the scratch
	if allocs := testing.AllocsPerRun(200, func() {
		sw.ProcessBatch(pkts, nil, nil, out)
	}); allocs != 0 {
		t.Errorf("ProcessBatch allocs/op = %v, want 0", allocs)
	}
}
