package switchsim

import (
	"fmt"
	"time"

	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
)

// Path enumerates the six packet-execution paths of Fig. 4.
type Path int

// The packet paths, colour-named as in the paper.
const (
	// PathRed: 5-tuple matched the blacklist; blocked immediately.
	PathRed Path = iota
	// PathBrown: 1..n-1-th packet of an unclassified flow; PL-feature
	// whitelist match only.
	PathBrown
	// PathBlue: n-th packet or timeout; PL+FL whitelist match, digest,
	// storage clear, loopback mirror.
	PathBlue
	// PathOrange: storage collision.
	PathOrange
	// PathPurple: flow already classified; early per-packet decision.
	PathPurple
	// PathGreen: recirculated loopback packet (state maintenance).
	PathGreen
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathRed:
		return "red"
	case PathBrown:
		return "brown"
	case PathBlue:
		return "blue"
	case PathOrange:
		return "orange"
	case PathPurple:
		return "purple"
	case PathGreen:
		return "green"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// Digest is the message sent to the controller when a flow's class is
// determined: the 13-byte 5-tuple plus a 1-bit label (App. B.2).
type Digest struct {
	Key   features.FlowKey
	Label int
}

// DigestBytes is the wire size of one iGuard digest (13 B 5-tuple plus
// the label bit, rounded up).
const DigestBytes = 14

// Decision reports what the pipeline did with one packet. It is a
// plain value — comparable, and free of per-packet heap allocation.
type Decision struct {
	Path      Path
	Predicted int // per-packet verdict: 0 benign, 1 malicious
	Dropped   bool
	// Recirculated is set when the packet was mirrored to the loopback
	// port (costs one extra pipeline pass).
	Recirculated bool
	// Digest was emitted to the controller when HasDigest is set.
	Digest    Digest
	HasDigest bool
}

// DigestSink consumes controller digests.
type DigestSink interface {
	OnDigest(d Digest)
}

// Config parameterises the pipeline.
type Config struct {
	// Slots is the per-hash-table slot count.
	Slots int
	// PktThreshold is n: FL features are matched and storage released at
	// the n-th packet of a flow.
	PktThreshold int
	// Timeout is δ, the idle timeout releasing flow storage.
	Timeout time.Duration
	// PLRules is the early-packet whitelist over the 4 PL features
	// (§3.3.1); nil means early packets are forwarded unchecked.
	PLRules *rules.CompiledRuleSet
	// FLRules is the whitelist over the 13 FL features; nil means flows
	// are never classified in-switch.
	FLRules *rules.CompiledRuleSet
	// BlacklistCapacity bounds the blacklist exact-match table.
	BlacklistCapacity int
	// DropMalicious selects drop (true) versus forward-to-quarantine
	// (false) for packets judged malicious.
	DropMalicious bool
	// Sink receives digests (the control plane); may be nil.
	Sink DigestSink
	// SweepInterval, when positive, runs a control-plane-style timeout sweep
	// over the flow tables every interval of trace time: idle
	// unclassified flows are classified-and-digested, idle labels are
	// reclaimed. Zero disables the sweep (timeouts then fire only when a
	// packet touches the slot, as in the minimal design).
	SweepInterval time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 4096
	}
	if c.PktThreshold <= 0 {
		c.PktThreshold = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.BlacklistCapacity <= 0 {
		c.BlacklistCapacity = 8192
	}
	return c
}

// slot is one flow-state entry of a bi-hash table.
type slot struct {
	valid bool
	key   features.FlowKey
	state features.FlowState
	// firstPL is the PL feature vector of the flow's first packet, kept
	// in metadata registers for the blue-path merged-whitelist match.
	// A fixed array — like the hardware registers it models — so slot
	// (re)initialisation never touches the heap.
	firstPL [features.PLDim]float64
	// label is -1 while unclassified, else 0/1.
	label int
	// lastSeen tracks idleness after classification too (state is
	// cleared but the label lingers until timeout).
	lastSeen time.Time
}

// Counters aggregates pipeline statistics.
type Counters struct {
	Packets       int
	PathCounts    [6]int
	Drops         int
	Digests       int
	DigestBytes   int
	Recirculated  int
	MirroredCPU   int
	MirroredBytes int
	// Collisions where the incoming flow could not take a slot.
	HardCollisions int
	// Sweeps counts control-plane timeout sweeps; SweepReleases the
	// slots they reclaimed.
	Sweeps        int
	SweepReleases int
	// RuleSwaps counts whitelist hot-swaps applied via SetRules.
	RuleSwaps int
}

// Switch is the simulated data plane.
//
// Ownership and clock contract: a Switch is single-goroutine. It
// carries no internal locking, by design — the hot path models a data
// plane and must not pay for synchronisation it does not need — so
// exactly one goroutine may touch a given Switch (ProcessPacket,
// SweepTimeouts, SetRules, the blacklist mutators, Counters) at a
// time. Digest delivery is synchronous: ProcessPacket invokes the
// configured Sink inline, so a controller reacting to a digest calls
// back into the switch on the owning goroutine, which is what makes
// the controller's data-plane calls safe without a switch-side lock.
// Concurrent serving runs one private Switch per shard worker and
// routes every interaction — packets, timeout sweeps, rule swaps,
// stats reads — through that worker's mailbox (see internal/serve).
//
// The Switch has no clock of its own: every timeout decision derives
// from the time.Time values handed to it — packet capture timestamps
// via ProcessPacket, and explicit sweep instants via SweepTimeouts.
// Replaying the same trace therefore yields byte-identical behaviour
// regardless of wall-clock speed; live deployments thread real time in
// through the same two entry points.
type Switch struct {
	cfg       Config
	tables    [2][]slot
	seeds     [2]uint32
	blacklist map[features.FlowKey]bool
	lastSweep time.Time
	Counters  Counters

	// flBuf is the FL-vector scratch the classify paths materialise
	// flow state into — per-switch (hence per-shard under
	// internal/serve) and safe without locking under the
	// single-goroutine ownership contract above. It is what keeps the
	// packet hot path free of heap allocation. The ownedby annotation
	// documents the contract for iguard-vet; the package declares no
	// //iguard:owner root because the owning goroutine is whichever one
	// drives this Switch (internal/serve's shard loop, a test, a replay
	// harness), so shardown arms only the escape checks here.
	//
	//iguard:ownedby(switch)
	flBuf [features.FLDim]float64
	// plBuf is the PL-vector scratch for stateless per-packet matches.
	//
	//iguard:ownedby(switch)
	plBuf [features.PLDim]float64

	// Batch scratch, sized to the largest batch seen (growBatch). The
	// PL values and codes are feature-major so one quantiser pass and
	// one word-parallel match cover the whole batch (§ DESIGN 12).
	//
	//iguard:ownedby(switch)
	batchPL []float64
	//iguard:ownedby(switch)
	batchCodes []uint64
	//iguard:ownedby(switch)
	batchPLV []int
	//iguard:ownedby(switch)
	batchMatch rules.BatchScratch
}

// New builds a switch from the config.
func New(cfg Config) *Switch {
	cfg = cfg.withDefaults()
	sw := &Switch{cfg: cfg, blacklist: map[features.FlowKey]bool{}, seeds: [2]uint32{0x1badb002, 0x5ca1ab1e}}
	sw.tables[0] = make([]slot, cfg.Slots)
	sw.tables[1] = make([]slot, cfg.Slots)
	return sw
}

// Config returns the active configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// SetSink attaches the digest consumer (the control plane). It exists
// because the controller needs the switch reference first.
func (sw *Switch) SetSink(sink DigestSink) { sw.cfg.Sink = sink }

// SetRules replaces the whitelist tables in one step — the hot-swap
// primitive of the model lifecycle: the control plane compiles a new
// saved model and swaps its rules into the running pipeline between
// packets, with flow state, labels, and the blacklist all surviving
// the swap (only the match tables change, as a runtime table rewrite
// would on hardware). Either set may be nil with the usual meaning
// (nil PLRules forwards early packets unchecked; nil FLRules never
// classifies in-switch). Per the ownership contract, the caller must
// be the goroutine owning the switch.
func (sw *Switch) SetRules(pl, fl *rules.CompiledRuleSet) {
	sw.cfg.PLRules = pl
	sw.cfg.FLRules = fl
	sw.Counters.RuleSwaps++
}

// InstallBlacklist adds a 5-tuple to the blacklist table (the red-path
// match). It returns false when the table is full.
func (sw *Switch) InstallBlacklist(key features.FlowKey) bool {
	k := key.Canonical()
	if sw.blacklist[k] {
		return true
	}
	if len(sw.blacklist) >= sw.cfg.BlacklistCapacity {
		return false
	}
	sw.blacklist[k] = true
	return true
}

// RemoveBlacklist deletes a 5-tuple from the blacklist.
func (sw *Switch) RemoveBlacklist(key features.FlowKey) {
	delete(sw.blacklist, key.Canonical())
}

// BlacklistLen returns the current blacklist size.
func (sw *Switch) BlacklistLen() int { return len(sw.blacklist) }

// lookup finds the resident slot for key, or a free slot; when
// candidate slots hold other flows it returns them as collision
// victims in victims[:nVictims]. The victims array is fixed-size (one
// candidate per table) so a collision never allocates. fold is
// key.Fold(), computed once by the caller and finalised here per
// table seed.
func (sw *Switch) lookup(key features.FlowKey, fold uint32) (resident *slot, free *slot, victims [2]*slot, nVictims int) {
	for ti := 0; ti < 2; ti++ {
		idx := features.IndexFold(fold, sw.seeds[ti], sw.cfg.Slots)
		s := &sw.tables[ti][idx]
		if s.valid && s.key == key {
			return s, nil, victims, 0
		}
		if !s.valid {
			if free == nil {
				free = s
			}
			continue
		}
		victims[nVictims] = s
		nVictims++
	}
	return nil, free, victims, nVictims
}

// classifyFL runs the blue-path whitelist match over the flow state: the
// PL features of the flow's first packet combined with the FL features.
// The verdict is malicious when either table says so (the merged
// whitelist of §3.3.1). The FL vector materialises into the switch's
// scratch buffer, so classification is allocation-free.
func (sw *Switch) classifyFL(st *features.FlowState, firstPL []float64) int {
	verdict := 0
	if sw.cfg.FLRules != nil {
		verdict = sw.cfg.FLRules.Match(st.VectorInto(sw.flBuf[:]))
	}
	if verdict == 0 && sw.cfg.PLRules != nil && firstPL != nil {
		verdict = sw.cfg.PLRules.Match(firstPL)
	}
	return verdict
}

// classifyPL runs the brown/orange-path PL-only match for one packet.
func (sw *Switch) classifyPL(p *netpkt.Packet) int {
	if sw.cfg.PLRules == nil {
		return 0
	}
	return sw.cfg.PLRules.Match(features.PLVectorInto(sw.plBuf[:], p))
}

// emitDigest sends the flow verdict to the controller.
func (sw *Switch) emitDigest(key features.FlowKey, label int) Digest {
	d := Digest{Key: key, Label: label}
	sw.Counters.Digests++
	sw.Counters.DigestBytes += DigestBytes
	sw.notifySink(d)
	return d
}

// notifySink hands a digest to the configured DigestSink. The sink is
// the control-plane boundary: digests fire per *flow* (blue path), not
// per packet, and what a controller does with one is its own business —
// the hot-path allocation contract ends at this interface dispatch.
//
//iguard:coldpath per-flow control-plane boundary, outside the per-packet contract
func (sw *Switch) notifySink(d Digest) {
	if sw.cfg.Sink != nil {
		sw.cfg.Sink.OnDigest(d)
	}
}

// mirrorToCPU models the egress truncated-payload mirror used to update
// whitelist rules from benign traffic (§2 step 11).
func (sw *Switch) mirrorToCPU(p *netpkt.Packet) {
	sw.Counters.MirroredCPU++
	// Truncated to headers + metadata: 64 bytes.
	sw.Counters.MirroredBytes += 64
}

// ProcessPacket runs one packet through the pipeline and returns the
// decision taken. It is the per-packet hot path: iguard-vet statically
// verifies the whole call tree below it allocation-free (the runtime
// AllocsPerRun pins agree), with the digest sink as the only
// //iguard:coldpath exit.
//
//iguard:hotpath
func (sw *Switch) ProcessPacket(p *netpkt.Packet) Decision {
	key, fold := features.CanonicalFoldOf(p)
	return sw.processOne(p, key, fold, -1)
}

// ProcessBatch runs a batch of packets through the pipeline, writing
// each packet's decision into out (len(out) must be ≥ len(pkts)).
// Decisions and counters are byte-identical to calling ProcessPacket
// on each packet in order — the batch form exists to amortise the
// per-packet setup: the PL feature vectors of the whole batch are
// quantised feature-major in one pass and matched word-parallel
// (rules.MatchColumns) before the per-packet pipeline walk, which then
// consumes the precomputed verdicts on the arms that need them. keys,
// when non-nil, carries each packet's canonical flow key (computed
// once by callers that already hash it, e.g. the serve router); nil
// derives the keys here. folds, when non-nil, carries each key's
// FoldCanonical value (the serve router computes it once per packet
// for shard routing and threads it through); nil folds here. Same
// ownership contract as ProcessPacket.
//
//iguard:hotpath
func (sw *Switch) ProcessBatch(pkts []netpkt.Packet, keys []features.FlowKey, folds []uint32, out []Decision) {
	n := len(pkts)
	if n == 0 {
		return
	}
	if len(sw.batchPLV) < n {
		sw.growBatch(n)
	}
	havePL := sw.cfg.PLRules != nil
	if havePL {
		vals := sw.batchPL
		for i := range pkts {
			v := features.PLVectorInto(sw.plBuf[:], &pkts[i])
			for f := 0; f < features.PLDim; f++ {
				vals[f*n+i] = v[f]
			}
		}
		q := sw.cfg.PLRules.Quantizer
		codes := sw.batchCodes
		for f := 0; f < features.PLDim; f++ {
			q.EncodeColumnInto(codes[f*n:f*n+n], f, vals[f*n:f*n+n])
		}
		sw.cfg.PLRules.MatchColumns(sw.batchPLV[:n], codes, n, n, &sw.batchMatch)
	}
	for i := range pkts {
		pre := -1
		if havePL {
			pre = sw.batchPLV[i]
		}
		var key features.FlowKey
		var fold uint32
		if keys != nil {
			key = keys[i]
			if folds != nil {
				fold = folds[i]
			} else {
				fold = key.FoldCanonical()
			}
		} else {
			key, fold = features.CanonicalFoldOf(&pkts[i])
		}
		out[i] = sw.processOne(&pkts[i], key, fold, pre)
	}
}

// growBatch (re)sizes the batch scratch to n packets.
//
//iguard:coldpath amortised scratch growth on batch-size changes, not per packet
func (sw *Switch) growBatch(n int) {
	sw.batchPL = make([]float64, features.PLDim*n)
	sw.batchCodes = make([]uint64, features.PLDim*n)
	sw.batchPLV = make([]int, n)
}

// plVerdict returns the packet's PL whitelist verdict: the batch-
// precomputed one when the caller has it (pre ≥ 0), else a fresh
// per-packet match. The two are identical by construction — the batch
// path quantises and matches the same vector through the same rule set.
func (sw *Switch) plVerdict(p *netpkt.Packet, pre int) int {
	if pre >= 0 {
		return pre
	}
	return sw.classifyPL(p)
}

// processOne is the pipeline walk shared by ProcessPacket and
// ProcessBatch: key is the packet's canonical flow key and fold its
// FoldCanonical value (both computed once by the caller), prePL the
// precomputed PL verdict or -1.
func (sw *Switch) processOne(p *netpkt.Packet, key features.FlowKey, fold uint32, prePL int) Decision {
	sw.Counters.Packets++
	now := p.Timestamp
	if sw.cfg.SweepInterval > 0 {
		if sw.lastSweep.IsZero() {
			sw.lastSweep = now
		} else if now.Sub(sw.lastSweep) >= sw.cfg.SweepInterval {
			sw.SweepTimeouts(now)
			sw.lastSweep = now
		}
	}
	// Red path: blacklist match.
	if sw.blacklist[key] {
		sw.Counters.PathCounts[PathRed]++
		sw.Counters.Drops++
		// Blacklisted flows are always blocked, independent of the
		// drop-vs-quarantine policy for whitelist misses.
		return Decision{Path: PathRed, Predicted: 1, Dropped: true}
	}

	resident, free, victims, nVictims := sw.lookup(key, fold)

	if resident != nil {
		// Timeout of the resident flow itself (blue path, timeout arm).
		if resident.label == -1 && resident.state.IdleFor(now, sw.cfg.Timeout) {
			return sw.bluePath(resident, p, true, prePL)
		}
		if resident.label >= 0 {
			// Purple path: early decision from the flow label register.
			// Label storage itself times out to keep slots reusable.
			if now.Sub(resident.lastSeen) > sw.cfg.Timeout {
				*resident = slot{}
				return sw.admit(p, key, resident, now, prePL)
			}
			resident.lastSeen = now
			sw.Counters.PathCounts[PathPurple]++
			dropped := resident.label == 1 && sw.cfg.DropMalicious
			if dropped {
				sw.Counters.Drops++
			}
			return Decision{Path: PathPurple, Predicted: resident.label, Dropped: dropped}
		}
		// Accumulating flow: add the packet.
		resident.state.Add(p)
		resident.lastSeen = now
		if resident.state.Count >= sw.cfg.PktThreshold {
			return sw.bluePath(resident, p, false, prePL)
		}
		// Brown path: early packets, PL-only match.
		sw.Counters.PathCounts[PathBrown]++
		verdict := sw.plVerdict(p, prePL)
		dropped := verdict == 1 && sw.cfg.DropMalicious
		if dropped {
			sw.Counters.Drops++
		}
		return Decision{Path: PathBrown, Predicted: verdict, Dropped: dropped}
	}

	if free != nil {
		return sw.admit(p, key, free, now, prePL)
	}

	// Orange path: both candidate slots occupied by other flows.
	sw.Counters.PathCounts[PathOrange]++
	// Timed-out victims are classified and evicted first.
	for _, v := range victims[:nVictims] {
		if v.label == -1 && v.state.IdleFor(now, sw.cfg.Timeout) {
			verdict := sw.classifyFL(&v.state, v.plVec())
			sw.emitDigest(v.key, verdict)
			sw.Counters.Recirculated++
			*v = slot{}
			d := sw.admit(p, key, v, now, prePL)
			d.Path = PathOrange
			d.Recirculated = true
			return d
		}
	}
	// A classified victim (label 0/1) is evicted: clear and re-init with
	// the incoming packet, mirror to loopback to initialise the flow ID
	// (green path), match PL features for the packet's own verdict.
	for _, v := range victims[:nVictims] {
		if v.label >= 0 {
			*v = slot{}
			sw.Counters.Recirculated++
			sw.Counters.PathCounts[PathGreen]++
			d := sw.admit(p, key, v, now, prePL)
			d.Path = PathOrange
			d.Recirculated = true
			return d
		}
	}
	// All victims still collecting (label -1): the incoming flow stays
	// stateless; PL-only decision.
	sw.Counters.HardCollisions++
	verdict := sw.plVerdict(p, prePL)
	dropped := verdict == 1 && sw.cfg.DropMalicious
	if dropped {
		sw.Counters.Drops++
	}
	return Decision{Path: PathOrange, Predicted: verdict, Dropped: dropped}
}

// plVec returns the PL vector of the slot's first packet.
func (s *slot) plVec() []float64 { return s.firstPL[:] }

// admit initialises a slot with the packet's flow and runs the
// brown-path PL match (or blue when n == 1). key is the packet's
// canonical flow key, computed once by processOne's caller and
// threaded through rather than re-derived per admission; prePL is the
// batch-precomputed PL verdict or -1.
func (sw *Switch) admit(p *netpkt.Packet, key features.FlowKey, s *slot, now time.Time, prePL int) Decision {
	s.valid = true
	s.key = key
	s.label = -1
	s.state = features.FlowState{}
	features.PLVectorInto(s.firstPL[:], p)
	s.state.Add(p)
	s.lastSeen = now
	if s.state.Count >= sw.cfg.PktThreshold {
		return sw.bluePath(s, p, false, prePL)
	}
	sw.Counters.PathCounts[PathBrown]++
	verdict := sw.plVerdict(p, prePL)
	dropped := verdict == 1 && sw.cfg.DropMalicious
	if dropped {
		sw.Counters.Drops++
	}
	return Decision{Path: PathBrown, Predicted: verdict, Dropped: dropped}
}

// bluePath classifies the flow (n-th packet or timeout), emits the
// digest, clears the stateful storage, mirrors to the loopback port to
// write the flow-label register (green path), and mirrors benign flows
// to the CPU for whitelist updates.
func (sw *Switch) bluePath(s *slot, p *netpkt.Packet, timedOut bool, prePL int) Decision {
	sw.Counters.PathCounts[PathBlue]++
	verdict := sw.classifyFL(&s.state, s.plVec())
	digest := sw.emitDigest(s.key, verdict)

	// Loopback mirror updates the flow-label register (green path).
	sw.Counters.Recirculated++
	sw.Counters.PathCounts[PathGreen]++
	s.label = verdict
	s.state = features.FlowState{}
	s.lastSeen = p.Timestamp

	pktVerdict := verdict
	if timedOut {
		// The packet that revealed the timeout was not part of the
		// classified window; it gets its own PL-feature verdict and the
		// flow starts accumulating again from this packet.
		pktVerdict = sw.plVerdict(p, prePL)
		s.label = -1
		s.state.Add(p)
		features.PLVectorInto(s.firstPL[:], p)
		// The flow's verdict still stands via the digest.
		if verdict == 1 {
			pktVerdict = 1
		}
	}
	if verdict == 0 {
		sw.mirrorToCPU(p)
	}
	dropped := pktVerdict == 1 && sw.cfg.DropMalicious
	if dropped {
		sw.Counters.Drops++
	}
	return Decision{Path: PathBlue, Predicted: pktVerdict, Dropped: dropped, Recirculated: true, Digest: digest, HasDigest: true}
}

// SweepTimeouts runs the control-plane timeout sweep at the given trace
// instant: flows idle past δ are classified from their accumulated
// state (blue-path semantics, with digest and recirculation accounted),
// and idle classified labels are reclaimed so the slots become free.
func (sw *Switch) SweepTimeouts(now time.Time) {
	sw.Counters.Sweeps++
	for ti := 0; ti < 2; ti++ {
		for i := range sw.tables[ti] {
			s := &sw.tables[ti][i]
			if !s.valid {
				continue
			}
			switch {
			case s.label == -1 && s.state.IdleFor(now, sw.cfg.Timeout):
				verdict := sw.classifyFL(&s.state, s.plVec())
				sw.emitDigest(s.key, verdict)
				sw.Counters.Recirculated++
				*s = slot{}
				sw.Counters.SweepReleases++
			case s.label >= 0 && now.Sub(s.lastSeen) > sw.cfg.Timeout:
				*s = slot{}
				sw.Counters.SweepReleases++
			}
		}
	}
}

// ActiveFlows returns the number of valid slots (classified or
// accumulating).
func (sw *Switch) ActiveFlows() int {
	n := 0
	for ti := 0; ti < 2; ti++ {
		for i := range sw.tables[ti] {
			if sw.tables[ti][i].valid {
				n++
			}
		}
	}
	return n
}

// ClearFlow releases the FL feature storage of a flow (controller
// cleanup after a digest). The flow-label register is a separate
// storage in the design (Fig. 4) and survives this cleanup — it is what
// the purple path reads for early decisions; the switch reclaims it via
// the idle timeout.
func (sw *Switch) ClearFlow(key features.FlowKey) {
	k := key.Canonical()
	for ti := 0; ti < 2; ti++ {
		idx := k.Index(sw.seeds[ti], sw.cfg.Slots)
		s := &sw.tables[ti][idx]
		if s.valid && s.key == k {
			s.state = features.FlowState{}
		}
	}
}

// Usage returns the structural resource consumption of this deployment.
// Whitelist tables account under nibble range encoding: one TCAM entry
// per rule at the range-encoded key width.
func (sw *Switch) Usage() Usage {
	var specs []TCAMTableSpec
	if sw.cfg.PLRules != nil {
		specs = append(specs, TCAMTableSpec{Entries: len(sw.cfg.PLRules.Rules), KeyBits: sw.cfg.PLRules.RangeKeyBits()})
	}
	if sw.cfg.FLRules != nil {
		specs = append(specs, TCAMTableSpec{Entries: len(sw.cfg.FLRules.Rules), KeyBits: sw.cfg.FLRules.RangeKeyBits()})
	}
	return PipelineUsage(sw.cfg.Slots, sw.cfg.BlacklistCapacity, specs)
}

// Latency model constants (App. B.1): one pipeline pass plus a
// recirculation penalty for mirrored packets.
const (
	basePipelineLatency = 520 * time.Nanosecond
	recircLatency       = 420 * time.Nanosecond
)

// AvgLatency returns the modelled mean per-packet latency given the
// recirculation counters accumulated so far.
func (sw *Switch) AvgLatency() time.Duration {
	if sw.Counters.Packets == 0 {
		return 0
	}
	total := int64(sw.Counters.Packets)*int64(basePipelineLatency) +
		int64(sw.Counters.Recirculated)*int64(recircLatency)
	return time.Duration(total / int64(sw.Counters.Packets))
}
