package switchsim

import (
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
)

var testBase = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func mkPkt(srcLast byte, sport uint16, length int, at time.Duration) netpkt.Packet {
	return netpkt.Packet{
		Timestamp: testBase.Add(at),
		SrcIP:     [4]byte{10, 0, 0, srcLast},
		DstIP:     [4]byte{23, 1, 0, 1},
		SrcPort:   sport,
		DstPort:   443,
		Proto:     netpkt.ProtoTCP,
		TTL:       64,
		Length:    length,
	}
}

// flRulesAllowSmall builds FL whitelist rules that whitelist flows whose
// average packet size (feature index FLAvgSize) is below 500 — large-
// packet flows default to malicious.
func flRulesAllowSmall() *rules.CompiledRuleSet {
	dim := features.FLDim
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for i := range hi {
		hi[i] = 1e6
	}
	box := rules.NewBox(lo, hi)
	box[features.FLAvgSize] = rules.Interval{Lo: 0, Hi: 500}
	rs := &rules.RuleSet{Rules: []rules.Rule{{Box: box, Label: 0}}, Dim: dim, DefaultLabel: 1}
	min := make([]float64, dim)
	max := make([]float64, dim)
	for i := range max {
		max[i] = 1e6
	}
	return rules.Compile(rs, rules.NewQuantizer(min, max, 16))
}

// plRulesAllowPort allows only packets to port 443 (PL feature 0 =
// dst_port).
func plRulesAllowPort() *rules.CompiledRuleSet {
	dim := features.PLDim
	lo := make([]float64, dim)
	hi := []float64{65536, 256, 2048, 256}
	box := rules.NewBox(lo, hi)
	box[features.PLDstPort] = rules.Interval{Lo: 400, Hi: 500}
	rs := &rules.RuleSet{Rules: []rules.Rule{{Box: box, Label: 0}}, Dim: dim, DefaultLabel: 1}
	return rules.Compile(rs, rules.NewQuantizer(lo, hi, 16))
}

func newTestSwitch(n int, timeout time.Duration) *Switch {
	return New(Config{
		Slots:         64,
		PktThreshold:  n,
		Timeout:       timeout,
		FLRules:       flRulesAllowSmall(),
		PLRules:       plRulesAllowPort(),
		DropMalicious: true,
	})
}

func TestBrownThenBluePath(t *testing.T) {
	sw := newTestSwitch(3, time.Minute)
	// Small benign flow: two brown packets then a blue classification.
	var decisions []Decision
	for i := 0; i < 3; i++ {
		p := mkPkt(1, 1000, 100, time.Duration(i)*time.Millisecond)
		decisions = append(decisions, sw.ProcessPacket(&p))
	}
	if decisions[0].Path != PathBrown || decisions[1].Path != PathBrown {
		t.Errorf("early paths = %v, %v", decisions[0].Path, decisions[1].Path)
	}
	if decisions[2].Path != PathBlue {
		t.Fatalf("3rd packet path = %v, want blue", decisions[2].Path)
	}
	if decisions[2].Predicted != 0 {
		t.Errorf("benign flow predicted %d", decisions[2].Predicted)
	}
	if !decisions[2].HasDigest {
		t.Error("blue path must emit a digest")
	}
	if !decisions[2].Recirculated {
		t.Error("blue path must recirculate")
	}
}

func TestPurplePathAfterClassification(t *testing.T) {
	sw := newTestSwitch(2, time.Minute)
	p1 := mkPkt(1, 1000, 100, 0)
	p2 := mkPkt(1, 1000, 100, time.Millisecond)
	p3 := mkPkt(1, 1000, 100, 2*time.Millisecond)
	sw.ProcessPacket(&p1)
	d2 := sw.ProcessPacket(&p2)
	if d2.Path != PathBlue {
		t.Fatalf("2nd packet path = %v", d2.Path)
	}
	d3 := sw.ProcessPacket(&p3)
	if d3.Path != PathPurple {
		t.Fatalf("3rd packet path = %v, want purple", d3.Path)
	}
	if d3.Predicted != 0 {
		t.Errorf("purple predicted = %d", d3.Predicted)
	}
}

func TestMaliciousFlowDropped(t *testing.T) {
	sw := newTestSwitch(2, time.Minute)
	// Large packets: avg size 1400 → not whitelisted.
	p1 := mkPkt(2, 2000, 1400, 0)
	p2 := mkPkt(2, 2000, 1400, time.Millisecond)
	p3 := mkPkt(2, 2000, 1400, 2*time.Millisecond)
	sw.ProcessPacket(&p1)
	d2 := sw.ProcessPacket(&p2)
	if d2.Predicted != 1 {
		t.Fatalf("malicious flow predicted %d at blue", d2.Predicted)
	}
	if !d2.Dropped {
		t.Error("malicious blue packet not dropped")
	}
	d3 := sw.ProcessPacket(&p3)
	if d3.Path != PathPurple || d3.Predicted != 1 || !d3.Dropped {
		t.Errorf("purple malicious: %+v", d3)
	}
}

func TestRedPathBlacklist(t *testing.T) {
	sw := newTestSwitch(4, time.Minute)
	p := mkPkt(3, 3000, 100, 0)
	key := features.KeyOf(&p)
	if !sw.InstallBlacklist(key) {
		t.Fatal("install failed")
	}
	d := sw.ProcessPacket(&p)
	if d.Path != PathRed || !d.Dropped || d.Predicted != 1 {
		t.Errorf("red path decision: %+v", d)
	}
	// Reverse direction also matches (bi-hash canonical key).
	rev := p
	rev.SrcIP, rev.DstIP = p.DstIP, p.SrcIP
	rev.SrcPort, rev.DstPort = p.DstPort, p.SrcPort
	if got := sw.ProcessPacket(&rev); got.Path != PathRed {
		t.Errorf("reverse direction path = %v, want red", got.Path)
	}
	sw.RemoveBlacklist(key)
	if got := sw.ProcessPacket(&p); got.Path == PathRed {
		t.Error("removed blacklist entry still matches")
	}
}

func TestBlacklistCapacity(t *testing.T) {
	sw := New(Config{Slots: 16, PktThreshold: 4, Timeout: time.Minute, BlacklistCapacity: 2})
	k1 := features.FlowKey{SrcIP: [4]byte{1, 1, 1, 1}, Proto: 6}
	k2 := features.FlowKey{SrcIP: [4]byte{2, 2, 2, 2}, Proto: 6}
	k3 := features.FlowKey{SrcIP: [4]byte{3, 3, 3, 3}, Proto: 6}
	if !sw.InstallBlacklist(k1) || !sw.InstallBlacklist(k2) {
		t.Fatal("install under capacity failed")
	}
	if sw.InstallBlacklist(k3) {
		t.Error("install over capacity succeeded")
	}
	if sw.InstallBlacklist(k1) != true {
		t.Error("re-install of existing entry should succeed")
	}
	if sw.BlacklistLen() != 2 {
		t.Errorf("blacklist len = %d", sw.BlacklistLen())
	}
}

func TestTimeoutBluePath(t *testing.T) {
	sw := newTestSwitch(100, 50*time.Millisecond)
	p1 := mkPkt(4, 4000, 100, 0)
	p2 := mkPkt(4, 4000, 100, 10*time.Millisecond)
	sw.ProcessPacket(&p1)
	sw.ProcessPacket(&p2)
	// Long gap: next packet of the same flow triggers timeout
	// classification.
	p3 := mkPkt(4, 4000, 100, time.Second)
	d := sw.ProcessPacket(&p3)
	if d.Path != PathBlue {
		t.Fatalf("timeout path = %v, want blue", d.Path)
	}
	if !d.HasDigest {
		t.Error("timeout must digest")
	}
	// The flow restarts accumulating with p3.
	if sw.ActiveFlows() != 1 {
		t.Errorf("active flows = %d", sw.ActiveFlows())
	}
}

func TestOrangePathEvictsClassifiedVictim(t *testing.T) {
	// Single-slot tables force collisions.
	sw := New(Config{
		Slots:         1,
		PktThreshold:  2,
		Timeout:       time.Minute,
		FLRules:       flRulesAllowSmall(),
		DropMalicious: true,
	})
	// Classify flow A (occupies both tables? no — one slot each; A goes
	// to table0 or table1 slot 0).
	a1 := mkPkt(5, 5000, 100, 0)
	a2 := mkPkt(5, 5000, 100, time.Millisecond)
	sw.ProcessPacket(&a1)
	da := sw.ProcessPacket(&a2)
	if da.Path != PathBlue {
		t.Fatalf("flow A classification path = %v", da.Path)
	}
	// Flow B collides; with slots=1 both tables are occupied only if
	// another flow also resides in table1; fill it with flow C first.
	c1 := mkPkt(6, 6000, 100, 2*time.Millisecond)
	sw.ProcessPacket(&c1)
	// Now flow B arrives: both slots occupied; A is classified → evicted.
	b1 := mkPkt(7, 7000, 100, 3*time.Millisecond)
	db := sw.ProcessPacket(&b1)
	if db.Path != PathOrange {
		t.Fatalf("flow B path = %v, want orange", db.Path)
	}
	if !db.Recirculated {
		t.Error("classified-victim eviction must recirculate")
	}
}

func TestOrangePathUnclassifiedVictimsStateless(t *testing.T) {
	sw := New(Config{
		Slots:        1,
		PktThreshold: 10,
		Timeout:      time.Minute,
		PLRules:      plRulesAllowPort(),
	})
	// Two accumulating flows occupy both single-slot tables.
	a := mkPkt(8, 8000, 100, 0)
	c := mkPkt(9, 9000, 100, time.Millisecond)
	sw.ProcessPacket(&a)
	sw.ProcessPacket(&c)
	// Third flow collides with both, residents unclassified.
	b := mkPkt(10, 10000, 100, 2*time.Millisecond)
	d := sw.ProcessPacket(&b)
	if d.Path != PathOrange {
		t.Fatalf("path = %v", d.Path)
	}
	if sw.Counters.HardCollisions != 1 {
		t.Errorf("hard collisions = %d", sw.Counters.HardCollisions)
	}
	// PL rules allow port 443 → packet forwarded.
	if d.Predicted != 0 || d.Dropped {
		t.Errorf("stateless decision: %+v", d)
	}
}

func TestPLRulesCatchEarlyMalicious(t *testing.T) {
	sw := newTestSwitch(100, time.Minute)
	// Packet to a non-whitelisted port: PL verdict malicious on the
	// first (brown) packet.
	p := mkPkt(11, 1100, 100, 0)
	p.DstPort = 31337
	d := sw.ProcessPacket(&p)
	if d.Path != PathBrown {
		t.Fatalf("path = %v", d.Path)
	}
	if d.Predicted != 1 || !d.Dropped {
		t.Errorf("early malicious not caught: %+v", d)
	}
}

func TestDigestSink(t *testing.T) {
	var got []Digest
	sink := digestFunc(func(d Digest) { got = append(got, d) })
	sw := New(Config{
		Slots: 8, PktThreshold: 1, Timeout: time.Minute,
		FLRules: flRulesAllowSmall(), Sink: sink,
	})
	p := mkPkt(12, 1200, 100, 0)
	sw.ProcessPacket(&p)
	if len(got) != 1 {
		t.Fatalf("digests = %d", len(got))
	}
	if got[0].Label != 0 {
		t.Errorf("digest label = %d", got[0].Label)
	}
	if sw.Counters.DigestBytes != DigestBytes {
		t.Errorf("digest bytes = %d", sw.Counters.DigestBytes)
	}
}

type digestFunc func(Digest)

func (f digestFunc) OnDigest(d Digest) { f(d) }

func TestClearFlowKeepsLabelStorage(t *testing.T) {
	sw := newTestSwitch(100, time.Minute)
	p := mkPkt(13, 1300, 100, 0)
	sw.ProcessPacket(&p)
	if sw.ActiveFlows() != 1 {
		t.Fatalf("active = %d", sw.ActiveFlows())
	}
	// ClearFlow wipes the FL feature state but keeps the slot (the
	// flow-label register survives controller cleanup).
	sw.ClearFlow(features.KeyOf(&p))
	if sw.ActiveFlows() != 1 {
		t.Errorf("active after clear = %d, want 1 (label storage kept)", sw.ActiveFlows())
	}
	// The feature state is gone: the next packet counts as the first.
	p2 := mkPkt(13, 1300, 100, time.Millisecond)
	sw.ProcessPacket(&p2)
	if got := sw.Counters.PathCounts[PathBrown]; got < 2 {
		t.Errorf("brown count = %d, want flow re-accumulating", got)
	}
}

func TestUsageAndReport(t *testing.T) {
	sw := newTestSwitch(4, time.Minute)
	u := sw.Usage()
	if u.TCAMBits == 0 {
		t.Error("no TCAM accounted for installed rules")
	}
	if u.SRAMBits == 0 {
		t.Error("no SRAM accounted")
	}
	if u.Stages != 12 {
		t.Errorf("stages = %d", u.Stages)
	}
	rep := u.Fractions(Tofino1Budget())
	if rep.TCAM <= 0 || rep.TCAM >= 1 {
		t.Errorf("TCAM fraction = %v", rep.TCAM)
	}
	if rep.Rho() <= 0 {
		t.Errorf("rho = %v", rep.Rho())
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestUsageAdd(t *testing.T) {
	a := Usage{Stages: 10, TCAMBits: 100, SRAMBits: 200, SALUs: 3, VLIWs: 4}
	b := Usage{Stages: 12, TCAMBits: 50, SRAMBits: 100, SALUs: 2, VLIWs: 1}
	c := a.Add(b)
	if c.Stages != 12 || c.TCAMBits != 150 || c.SRAMBits != 300 || c.SALUs != 5 || c.VLIWs != 5 {
		t.Errorf("Add = %+v", c)
	}
}

func TestAvgLatency(t *testing.T) {
	sw := newTestSwitch(2, time.Minute)
	if sw.AvgLatency() != 0 {
		t.Error("latency before packets should be 0")
	}
	for i := 0; i < 10; i++ {
		p := mkPkt(byte(20+i), uint16(2000+i), 100, time.Duration(i)*time.Millisecond)
		sw.ProcessPacket(&p)
	}
	lat := sw.AvgLatency()
	if lat < basePipelineLatency {
		t.Errorf("latency %v below base", lat)
	}
	if lat > basePipelineLatency+recircLatency {
		t.Errorf("latency %v above max", lat)
	}
}

func TestPathString(t *testing.T) {
	for p := PathRed; p <= PathGreen; p++ {
		if p.String() == "" {
			t.Errorf("empty string for path %d", int(p))
		}
	}
}

func TestDefaults(t *testing.T) {
	sw := New(Config{})
	cfg := sw.Config()
	if cfg.Slots <= 0 || cfg.PktThreshold <= 0 || cfg.Timeout <= 0 || cfg.BlacklistCapacity <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestNilRulesForwardEverything(t *testing.T) {
	sw := New(Config{Slots: 8, PktThreshold: 2, Timeout: time.Minute})
	p1 := mkPkt(30, 3000, 1400, 0)
	p2 := mkPkt(30, 3000, 1400, time.Millisecond)
	sw.ProcessPacket(&p1)
	d := sw.ProcessPacket(&p2)
	if d.Predicted != 0 {
		t.Errorf("nil rules predicted %d", d.Predicted)
	}
}

func TestCountersAccumulate(t *testing.T) {
	sw := newTestSwitch(2, time.Minute)
	for i := 0; i < 4; i++ {
		p := mkPkt(40, 4000, 100, time.Duration(i)*time.Millisecond)
		sw.ProcessPacket(&p)
	}
	c := sw.Counters
	if c.Packets != 4 {
		t.Errorf("packets = %d", c.Packets)
	}
	total := 0
	for _, n := range c.PathCounts {
		total += n
	}
	// Green path counts recirculations in addition to the original
	// packet's path, so total >= packets.
	if total < c.Packets {
		t.Errorf("path counts %v < packets %d", c.PathCounts, c.Packets)
	}
}

func TestSweepTimeoutsClassifiesIdleFlows(t *testing.T) {
	sw := New(Config{
		Slots:         64,
		PktThreshold:  100,
		Timeout:       50 * time.Millisecond,
		FLRules:       flRulesAllowSmall(),
		SweepInterval: 100 * time.Millisecond,
	})
	// Two packets of one flow, then silence.
	p1 := mkPkt(50, 5000, 100, 0)
	p2 := mkPkt(50, 5000, 100, 10*time.Millisecond)
	sw.ProcessPacket(&p1)
	sw.ProcessPacket(&p2)
	if sw.Counters.Digests != 0 {
		t.Fatal("premature digest")
	}
	// Manual sweep well past the timeout.
	sw.SweepTimeouts(testBase.Add(time.Second))
	if sw.Counters.Digests != 1 {
		t.Errorf("digests = %d, want 1 from sweep", sw.Counters.Digests)
	}
	if sw.Counters.SweepReleases != 1 {
		t.Errorf("releases = %d", sw.Counters.SweepReleases)
	}
	if sw.ActiveFlows() != 0 {
		t.Errorf("active = %d after sweep", sw.ActiveFlows())
	}
}

func TestSweepRunsAutomaticallyOnInterval(t *testing.T) {
	sw := New(Config{
		Slots:         64,
		PktThreshold:  100,
		Timeout:       20 * time.Millisecond,
		FLRules:       flRulesAllowSmall(),
		SweepInterval: 50 * time.Millisecond,
	})
	p1 := mkPkt(51, 5100, 100, 0)
	sw.ProcessPacket(&p1)
	// An unrelated packet 1s later triggers the automatic sweep.
	p2 := mkPkt(52, 5200, 100, time.Second)
	sw.ProcessPacket(&p2)
	if sw.Counters.Sweeps == 0 {
		t.Error("no automatic sweep fired")
	}
	if sw.Counters.Digests == 0 {
		t.Error("sweep did not classify the idle flow")
	}
}

func TestSweepReclaimsIdleLabels(t *testing.T) {
	sw := newTestSwitch(2, 30*time.Millisecond)
	// Classify a flow (label stored), then let it idle.
	p1 := mkPkt(53, 5300, 100, 0)
	p2 := mkPkt(53, 5300, 100, time.Millisecond)
	sw.ProcessPacket(&p1)
	sw.ProcessPacket(&p2)
	if sw.ActiveFlows() != 1 {
		t.Fatalf("active = %d", sw.ActiveFlows())
	}
	sw.SweepTimeouts(testBase.Add(time.Second))
	if sw.ActiveFlows() != 0 {
		t.Errorf("idle label not reclaimed: active = %d", sw.ActiveFlows())
	}
}

// TestSetRulesHotSwap pins the hot-swap primitive: swapping whitelists
// between packets changes future verdicts only — flow state, labels,
// and the blacklist all survive.
func TestSetRulesHotSwap(t *testing.T) {
	sw := newTestSwitch(3, time.Minute)

	// Classify a small benign flow under the original rules.
	for i := 0; i < 3; i++ {
		p := mkPkt(1, 1000, 100, time.Duration(i)*time.Millisecond)
		sw.ProcessPacket(&p)
	}
	// Blacklist another flow so survival across the swap is observable.
	blk := mkPkt(9, 9000, 100, 0)
	sw.InstallBlacklist(features.KeyOf(&blk))

	// Swap to an empty whitelist: everything classifies malicious now.
	empty := rules.Compile(&rules.RuleSet{Dim: features.FLDim, DefaultLabel: 1},
		rules.NewQuantizer(make([]float64, features.FLDim), []float64{
			1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6}, 16))
	sw.SetRules(nil, empty)
	if sw.Counters.RuleSwaps != 1 {
		t.Fatalf("RuleSwaps=%d want 1", sw.Counters.RuleSwaps)
	}

	// The already-classified flow keeps its pre-swap benign label
	// (purple path reads the label register, not the tables).
	p := mkPkt(1, 1000, 100, 5*time.Millisecond)
	if d := sw.ProcessPacket(&p); d.Path != PathPurple || d.Predicted != 0 {
		t.Fatalf("pre-swap label lost: %+v", d)
	}
	// The blacklist survived.
	if d := sw.ProcessPacket(&blk); d.Path != PathRed {
		t.Fatalf("blacklist lost across swap: %+v", d)
	}
	// A new small flow — benign under the old rules — now classifies
	// malicious under the swapped-in whitelist.
	var last Decision
	for i := 0; i < 3; i++ {
		q := mkPkt(2, 2000, 100, time.Duration(10+i)*time.Millisecond)
		last = sw.ProcessPacket(&q)
	}
	if last.Path != PathBlue || last.Predicted != 1 {
		t.Fatalf("post-swap classification = %+v, want blue/malicious", last)
	}
	// Swapping PL rules to nil forwards early packets unchecked.
	sw.SetRules(nil, empty)
	odd := mkPkt(3, 3000, 100, 20*time.Millisecond)
	odd.DstPort = 9999 // would fail the old PL port filter
	if d := sw.ProcessPacket(&odd); d.Path != PathBrown || d.Predicted != 0 {
		t.Fatalf("nil PL rules still filtering: %+v", d)
	}
	if sw.Counters.RuleSwaps != 2 {
		t.Fatalf("RuleSwaps=%d want 2", sw.Counters.RuleSwaps)
	}
}
