// Package switchsim is a software model of the Tofino-class programmable
// switch data plane iGuard deploys on: a match-action pipeline with the
// six packet-execution paths of Fig. 4 (blacklist, early-packet, n-th
// packet/timeout, collision, early-decision, loopback), stateful flow
// registers behind double bi-hash tables, whitelist TCAM tables, digests
// to the controller, mirror-to-loopback recirculation, and a structural
// resource-accounting model (TCAM/SRAM/sALU/VLIW/stages) used to
// reproduce Table 1.
//
// The model is structural rather than cycle-accurate: rule capacity,
// register layout, per-path behaviour and recirculation counts follow
// the P4 design; absolute gigabit throughput is out of scope (see
// DESIGN.md §6).
package switchsim

import "fmt"

// Budget describes the resources of one switch. Constants follow the
// public Tofino-1 architecture: 12 MAU stages; 24 TCAM blocks of
// 512x44 bits per stage; 80 SRAM blocks of 1024x128 bits per stage;
// 4 stateful ALUs and 32 VLIW action slots per stage.
type Budget struct {
	Stages   int
	TCAMBits int64
	SRAMBits int64
	SALUs    int
	VLIWs    int
}

// Tofino1Budget returns the budget of the Edgecore/Tofino-1 target the
// paper deploys on.
func Tofino1Budget() Budget {
	const stages = 12
	return Budget{
		Stages:   stages,
		TCAMBits: int64(stages) * 24 * 512 * 44,
		SRAMBits: int64(stages) * 80 * 1024 * 128,
		SALUs:    stages * 4,
		VLIWs:    stages * 32,
	}
}

// Usage is the absolute resource consumption of one deployment.
type Usage struct {
	Stages   int
	TCAMBits int64
	SRAMBits int64
	SALUs    int
	VLIWs    int
}

// Add returns the component-wise sum (stages take the max — tables in
// different categories share stages).
func (u Usage) Add(o Usage) Usage {
	s := u.Stages
	if o.Stages > s {
		s = o.Stages
	}
	return Usage{
		Stages:   s,
		TCAMBits: u.TCAMBits + o.TCAMBits,
		SRAMBits: u.SRAMBits + o.SRAMBits,
		SALUs:    u.SALUs + o.SALUs,
		VLIWs:    u.VLIWs + o.VLIWs,
	}
}

// Over lists a human-readable description of every dimension in which
// u exceeds b; an empty slice means the deployment fits the switch.
func (u Usage) Over(b Budget) []string {
	var out []string
	if u.Stages > b.Stages {
		out = append(out, fmt.Sprintf("stages %d exceed the %d-stage budget", u.Stages, b.Stages))
	}
	if u.TCAMBits > b.TCAMBits {
		out = append(out, fmt.Sprintf("TCAM %d bits exceed the %d-bit budget", u.TCAMBits, b.TCAMBits))
	}
	if u.SRAMBits > b.SRAMBits {
		out = append(out, fmt.Sprintf("SRAM %d bits exceed the %d-bit budget", u.SRAMBits, b.SRAMBits))
	}
	if u.SALUs > b.SALUs {
		out = append(out, fmt.Sprintf("%d stateful ALUs exceed the budget of %d", u.SALUs, b.SALUs))
	}
	if u.VLIWs > b.VLIWs {
		out = append(out, fmt.Sprintf("%d VLIW action slots exceed the budget of %d", u.VLIWs, b.VLIWs))
	}
	return out
}

// Report expresses usage as fractions of a budget — the form Table 1
// reports.
type Report struct {
	TCAM   float64
	SRAM   float64
	SALU   float64
	VLIW   float64
	Stages int
}

// Fractions computes the Table-1-style report.
func (u Usage) Fractions(b Budget) Report {
	return Report{
		TCAM:   frac(u.TCAMBits, b.TCAMBits),
		SRAM:   frac(u.SRAMBits, b.SRAMBits),
		SALU:   frac(int64(u.SALUs), int64(b.SALUs)),
		VLIW:   frac(int64(u.VLIWs), int64(b.VLIWs)),
		Stages: u.Stages,
	}
}

func frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Rho returns the scalar memory-footprint fraction ρ used by the
// paper's reward function (§4.2.1): the mean of the TCAM and SRAM
// fractions, the two memory resources.
func (r Report) Rho() float64 { return (r.TCAM + r.SRAM) / 2 }

// String renders the report as a Table-1 row.
func (r Report) String() string {
	return fmt.Sprintf("TCAM %.2f%%  SRAM %.2f%%  sALU %.2f%%  VLIW %.2f%%  Stages %d",
		100*r.TCAM, 100*r.SRAM, 100*r.SALU, 100*r.VLIW, r.Stages)
}

// Register-layout constants for SRAM accounting: each of the two
// bi-hash tables keeps per-slot flow state. Field widths in bits follow
// the P4 prototype's register definitions.
const (
	flowIDBits   = 104 // 5-tuple: 32+32+16+16+8
	countBits    = 16
	labelBits    = 2 // -1/0/1 plus valid
	tsBits       = 48
	statBits     = 32 // each size/IPD accumulator register
	numStatRegs  = 10 // sizeSum, sizeSq, sizeMin, sizeMax, ipdSum, ipdSq, ipdMin, ipdMax, firstTS(dup as stat), reserved
	perSlotBits  = flowIDBits + countBits + labelBits + 2*tsBits + numStatRegs*statBits
	blacklistKey = 104
	// blacklistValueBits: action + port.
	blacklistValueBits = 16
)

// saluGroups is the number of stateful-ALU register groups the pipeline
// occupies. Paired accumulators (sum+sqsum, min+max, first+last
// timestamp) pack into dual-slot sALUs per the HorusEye register layout,
// and the two bi-hash tables interleave across stages sharing groups:
// id, count+label, timestamps, sizeSum+sq, sizeMin+max, ipdSum+sq,
// ipdMin+max, timeout check, mirror/digest state.
const saluGroups = 9

// actionSlots is the number of VLIW action instructions across the six
// packet paths (forward, drop, update ×state, clear, mirror, digest,
// re-init, label write, early decision variants).
const actionSlots = 30

// PipelineUsage computes the structural resource usage of a deployment:
// the whitelist TCAM tables (PL and FL), the per-slot SRAM of both
// bi-hash tables, the blacklist exact-match table, and the fixed
// sALU/VLIW/stage footprint of the program.
func PipelineUsage(slots, blacklistCapacity int, tcamEntries []TCAMTableSpec) Usage {
	u := Usage{Stages: 12, SALUs: saluGroups, VLIWs: actionSlots}
	for _, t := range tcamEntries {
		u.TCAMBits += int64(t.Entries) * int64(t.KeyBits)
	}
	// Two hash tables of flow state plus the blacklist exact table
	// (hash tables in SRAM at 2x provisioning for hash headroom).
	u.SRAMBits = int64(2*slots)*int64(perSlotBits) +
		2*int64(blacklistCapacity)*int64(blacklistKey+blacklistValueBits)
	return u
}

// TCAMTableSpec describes one installed whitelist table for accounting.
type TCAMTableSpec struct {
	Entries int
	KeyBits int
}
