package switchsim

import (
	"testing"
	"time"

	"iguard/internal/netpkt"
)

// TestProcessPacketAllocationFree pins the zero-allocation contract of
// the packet hot path: in steady state — brown early packets, blue
// classifications with their green recirculation, purple early
// decisions, and orange collisions — ProcessPacket must never touch
// the heap. A regression here is a throughput regression in every
// serving shard, so it fails loudly rather than showing up only in
// benchmark numbers.
func TestProcessPacketAllocationFree(t *testing.T) {
	t.Run("brown-steady-state", func(t *testing.T) {
		// Threshold high enough that the flow keeps accumulating: every
		// measured packet takes the brown path.
		sw := newTestSwitch(1<<30, time.Hour)
		pkts := make([]netpkt.Packet, 64)
		for i := range pkts {
			pkts[i] = mkPkt(1, 1000, 100, time.Duration(i)*time.Millisecond)
		}
		warm := mkPkt(1, 1000, 100, 0)
		sw.ProcessPacket(&warm)
		i := 0
		if n := testing.AllocsPerRun(400, func() {
			sw.ProcessPacket(&pkts[i%len(pkts)])
			i++
		}); n != 0 {
			t.Errorf("brown-path allocs = %v, want 0", n)
		}
	})

	t.Run("blue-purple-cycle", func(t *testing.T) {
		// Threshold 2: packets alternate blue classification (digest,
		// recirculation, label write) and purple early decisions.
		sw := newTestSwitch(2, time.Hour)
		pkts := make([]netpkt.Packet, 64)
		for i := range pkts {
			pkts[i] = mkPkt(2, 2000, 100, time.Duration(i)*time.Millisecond)
		}
		warm := mkPkt(2, 2000, 100, 0)
		sw.ProcessPacket(&warm)
		sw.ProcessPacket(&warm)
		i := 0
		if n := testing.AllocsPerRun(400, func() {
			sw.ProcessPacket(&pkts[i%len(pkts)])
			i++
		}); n != 0 {
			t.Errorf("blue/purple-path allocs = %v, want 0", n)
		}
	})

	t.Run("orange-collisions", func(t *testing.T) {
		// A 1-slot table forces every distinct flow into the same two
		// candidate slots: constant collision pressure.
		sw := New(Config{
			Slots:        1,
			PktThreshold: 1 << 30,
			Timeout:      time.Hour,
			PLRules:      plRulesAllowPort(),
			FLRules:      flRulesAllowSmall(),
		})
		pkts := make([]netpkt.Packet, 64)
		for i := range pkts {
			pkts[i] = mkPkt(byte(3+i%8), uint16(3000+i%8), 100, time.Duration(i)*time.Millisecond)
		}
		for i := range pkts[:8] {
			sw.ProcessPacket(&pkts[i])
		}
		i := 0
		if n := testing.AllocsPerRun(400, func() {
			sw.ProcessPacket(&pkts[i%len(pkts)])
			i++
		}); n != 0 {
			t.Errorf("orange-path allocs = %v, want 0", n)
		}
		if sw.Counters.PathCounts[PathOrange] == 0 {
			t.Fatal("workload never hit the orange path; the assertion is vacuous")
		}
	})
}
