package core

import (
	"testing"

	"iguard/internal/mathx"
	"iguard/internal/rules"
)

// bandGuide flags points whose first feature exceeds 0.7 OR whose
// second feature leaves [-0.5, 1.5] (off-range bands on both sides),
// exercising both in-range splits and the boundary peel.
type bandGuide struct{}

func (bandGuide) Predict(x []float64) int {
	if x[0] > 0.7 || x[1] < -0.5 || x[1] > 1.5 {
		return 1
	}
	return 0
}
func (g bandGuide) PerMemberErrors(x []float64) []float64 {
	return []float64{float64(g.Predict(x))}
}
func (bandGuide) LabelLeafByMeanRE(meanRE []float64) int {
	if meanRE[0] > 0.5 {
		return 1
	}
	return 0
}

func uniformData(seed int64, n, dim int) [][]float64 {
	r := mathx.NewRand(seed)
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = r.Float64()
		}
		out[i] = v
	}
	return out
}

func TestBoundaryPeelCatchesOffRangePoints(t *testing.T) {
	// Training data lives in [0,1]²; the guide flags anything with
	// x[1] < -0.5, a region no training or augmentation sample reaches
	// without the peel.
	opts := DefaultOptions()
	opts.Trees = 3
	opts.SubSample = 128
	opts.Augment = 8
	opts.DistillAugment = 32
	opts.Bounds = rules.FullBox(2, -2, 3)
	opts.Seed = 3
	f, err := Fit(uniformData(3, 300, 2), bandGuide{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Deep off-range points route to peel leaves labelled malicious by
	// distillation augments.
	if got := f.Predict([]float64{0.5, -1.5}); got != 1 {
		t.Errorf("off-range point predicted %d, want 1", got)
	}
	if got := f.Predict([]float64{0.5, 2.5}); got != 1 {
		t.Errorf("off-range high point predicted %d, want 1", got)
	}
	// In-range benign space stays benign.
	if got := f.Predict([]float64{0.3, 0.5}); got != 0 {
		t.Errorf("benign point predicted %d, want 0", got)
	}
}

func TestBoundsPeelRegionsTileUniverse(t *testing.T) {
	opts := DefaultOptions()
	opts.Trees = 2
	opts.SubSample = 64
	opts.Augment = 4
	opts.DistillAugment = 16
	opts.Bounds = rules.FullBox(2, -1, 2)
	opts.Seed = 5
	f, err := Fit(uniformData(5, 200, 2), bandGuide{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(6)
	universe := rules.FullBox(2, -1, 2)
	for ti := range f.Trees {
		boxes, labels := f.LabelledLeafRegionsWithin(ti, universe)
		if len(boxes) != len(labels) {
			t.Fatal("boxes/labels mismatch")
		}
		for trial := 0; trial < 100; trial++ {
			p := []float64{-1 + 3*r.Float64(), -1 + 3*r.Float64()}
			hits := 0
			for _, b := range boxes {
				if b.Contains(p) {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("tree %d: point %v in %d regions", ti, p, hits)
			}
		}
	}
}

func TestPruneInvariance(t *testing.T) {
	// Pruning must not change any prediction.
	opts := DefaultOptions()
	opts.Trees = 3
	opts.SubSample = 128
	opts.Augment = 8
	opts.DistillAugment = 16
	opts.Bounds = rules.FullBox(2, -1, 2)
	opts.Seed = 7
	data := uniformData(7, 300, 2)
	// Fit prunes internally; fit a second forest and compare its
	// pre/post prune predictions manually.
	f, err := Fit(data, bandGuide{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := f.NumLeaves()
	// Prune again: idempotent and prediction-invariant.
	r := mathx.NewRand(8)
	probes := make([][]float64, 300)
	for i := range probes {
		probes[i] = []float64{-1 + 3*r.Float64(), -1 + 3*r.Float64()}
	}
	want := make([]int, len(probes))
	for i, p := range probes {
		want[i] = f.Predict(p)
	}
	f.Prune()
	if f.NumLeaves() > before {
		t.Errorf("second prune grew the forest: %d -> %d", before, f.NumLeaves())
	}
	for i, p := range probes {
		if got := f.Predict(p); got != want[i] {
			t.Fatalf("prune changed prediction at %v: %d -> %d", p, want[i], got)
		}
	}
}

func TestAugmentForSplitProperties(t *testing.T) {
	r := mathx.NewRand(9)
	box := rules.NewBox([]float64{0, 10}, []float64{1, 20})
	members := [][]float64{{0.5, 15}, {0.25, 12}}
	probes := augmentForSplit(r, box, 16, members)
	if len(probes) != 16 {
		t.Fatalf("probes = %d", len(probes))
	}
	for _, p := range probes {
		if !box.Contains(p) {
			t.Fatalf("probe %v outside box", p)
		}
	}
	// k = 0 yields none; empty members fall back to box normals.
	if got := augmentForSplit(r, box, 0, members); got != nil {
		t.Errorf("k=0 probes = %v", got)
	}
	if got := augmentForSplit(r, box, 6, nil); len(got) != 6 {
		t.Errorf("fallback probes = %d", len(got))
	}
}

func TestBestSplitIntervalLookahead(t *testing.T) {
	// A malicious sliver between two benign groups: single-threshold
	// gain is weak everywhere, but the interval candidate must win and
	// realise the split at the sliver's lower edge.
	var pts [][]float64
	var labels []int
	nMal := 0
	for i := 0; i < 40; i++ {
		pts = append(pts, []float64{float64(i) * 0.01}) // 0.00..0.39
		labels = append(labels, 0)
	}
	for i := 0; i < 6; i++ {
		pts = append(pts, []float64{0.50 + float64(i)*0.01})
		labels = append(labels, 1)
		nMal++
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, []float64{0.70 + float64(i)*0.01})
		labels = append(labels, 0)
	}
	ls := labelledSet{pts: pts, labels: labels, nMal: nMal}
	q, p, gain := bestSplit(ls, 1, 0)
	if q != 0 || gain <= 0 {
		t.Fatalf("no split found: q=%d gain=%v", q, gain)
	}
	// The split must land at one sliver edge, not inside the benign
	// groups.
	if !(p > 0.39 && p < 0.56) && !(p > 0.54 && p < 0.71) {
		t.Errorf("split point %v not at a sliver edge", p)
	}
}

func TestDistillAugmentFallback(t *testing.T) {
	// DistillAugment 0 falls back to Augment.
	opts := DefaultOptions()
	opts.Trees = 2
	opts.SubSample = 64
	opts.Augment = 8
	opts.DistillAugment = 0
	opts.Seed = 11
	if _, err := Fit(uniformData(11, 100, 2), bandGuide{}, opts); err != nil {
		t.Fatal(err)
	}
}
