package core

import (
	"fmt"
	"testing"

	"iguard/internal/mathx"
	"iguard/internal/rules"
)

// sliverGuide flags points whose f1 lies in [0.55, 0.70) — a thin
// interior sliver between two benign clusters.
type sliverGuide struct{}

func (sliverGuide) Predict(x []float64) int {
	if x[1] >= 0.55 && x[1] < 0.70 {
		return 1
	}
	return 0
}
func (sliverGuide) PerMemberErrors(x []float64) []float64 {
	if x[1] >= 0.55 && x[1] < 0.70 {
		return []float64{1}
	}
	return []float64{0}
}
func (sliverGuide) LabelLeafByMeanRE(meanRE []float64) int {
	if meanRE[0] > 0.5 {
		return 1
	}
	return 0
}

func TestSliverCarving(t *testing.T) {
	r := mathx.NewRand(1)
	// Benign clusters at f1≈0.1 and f1≈0.85, f0 uniform.
	var x [][]float64
	for i := 0; i < 400; i++ {
		f1 := 0.1 + 0.1*r.Float64()
		if i%2 == 0 {
			f1 = 0.78 + 0.2*r.Float64()
		}
		x = append(x, []float64{r.Float64(), f1})
	}
	for _, k := range []int{0, 8, 16} {
		opts := DefaultOptions()
		opts.Trees = 5
		opts.SubSample = 128
		opts.Augment = k
		opts.DistillAugment = 32
		opts.Bounds = rules.FullBox(2, -0.25, 1.75)
		opts.Seed = 7
		f, err := Fit(x, sliverGuide{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Test points inside the sliver.
		caught, total := 0, 0
		for i := 0; i < 100; i++ {
			p := []float64{r.Float64(), 0.56 + 0.13*r.Float64()}
			caught += f.Predict(p)
			total++
		}
		// Benign points must stay benign.
		fp := 0
		for i := 0; i < 100; i++ {
			p := []float64{r.Float64(), 0.12 + 0.05*r.Float64()}
			fp += f.Predict(p)
		}
		fmt.Printf("k=%d: sliver caught %d/%d, benign FP %d/100, leaves=%d\n", k, caught, total, fp, f.NumLeaves())
	}
}
