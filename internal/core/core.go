// Package core implements iGuard's primary contribution: an isolation
// forest whose growth is guided by a trained autoencoder ensemble
// (§3.2.1), whose leaves are labelled by knowledge distillation from
// that ensemble (§3.2.2), and whose inference is a majority vote of leaf
// labels across trees. The labelled forest is subsequently compiled into
// whitelist rules by package rules (§3.2.3).
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"iguard/internal/mathx"
	"iguard/internal/parallel"
	"iguard/internal/rules"
)

// Guide is the trained model ensemble that steers forest growth and
// labels leaves. *autoencoder.Ensemble satisfies it.
type Guide interface {
	// Predict implements Autoencoders.predict(x) ∈ {0, 1}.
	Predict(x []float64) int
	// PerMemberErrors returns RE_u(x) for every ensemble member.
	PerMemberErrors(x []float64) []float64
	// LabelLeafByMeanRE implements Eq. 6 over per-member mean errors.
	LabelLeafByMeanRE(meanRE []float64) int
}

// Options configures guided training and distillation.
type Options struct {
	// Trees is t, the ensemble size.
	Trees int
	// SubSample is Ψ, the per-tree sample size.
	SubSample int
	// Augment is k, the number of synthetic points added at every node
	// during the split search. The paper grid-searches k; small values
	// keep the entropy signal anchored to the guide's labels on real
	// samples (k = 0 disables node augmentation entirely).
	Augment int
	// DistillAugment is the per-leaf augmentation count for knowledge
	// distillation; 0 falls back to Augment. Distillation augmentation
	// is what labels data-free (off-manifold) leaves malicious, so
	// deployments keep it positive even when Augment is 0.
	DistillAugment int
	// TauSplit is τ_split, the class-skew stopping threshold; the paper
	// found 10⁻² effective.
	TauSplit float64
	// MaxCandidatesPerFeature caps the (q, p) split search per feature
	// (0 = consider every midpoint). The paper explores the full space;
	// the cap trades a little fidelity for tractability on big nodes.
	MaxCandidatesPerFeature int
	// Seed drives all randomness.
	Seed int64
	// Bounds, when non-empty, is the full feature domain the deployment
	// covers (the paper's hypercubes span the whole quantised range —
	// Fig. 3c shows [0, 256]). Trees still grow over the sub-sample's
	// data bounds so footnote-7 augmentation stays data-informed, but
	// each tree is then wrapped in boundary-peel splits at the inflated
	// data bounds: the feature space outside the training range becomes
	// explicit leaves that knowledge distillation labels from augmented
	// samples (off-manifold, so typically malicious). Without this the
	// region outside the training range would inherit boundary-leaf
	// labels it was never probed for.
	Bounds rules.Box
	// BoundsMargin inflates the data bounds before peeling (fraction of
	// the per-feature span) so benign samples just beyond the training
	// range are not peeled off; default 0.1.
	BoundsMargin float64
	// RandomSplits replaces the guided information-gain search with the
	// conventional iForest's uniform random (feature, point) choice
	// while keeping augmentation, stopping, distillation and pruning —
	// the ablation isolating §3.2.1's contribution from §3.2.2's.
	RandomSplits bool
	// Parallelism bounds the worker count for per-tree growth and
	// distillation (0 selects GOMAXPROCS). Every tree derives its own
	// random stream from (Seed, tree index) via mathx.DeriveSeed, so
	// the trained forest is byte-identical for every value — the knob
	// only changes wall-clock time. Runtime-only: excluded from the
	// serialised forest so saved models do not depend on it.
	Parallelism int `json:"-"`
}

// DefaultOptions mirrors the paper's operating point (t and Ψ are grid
// searched there; these are the centres of its search space).
func DefaultOptions() Options {
	return Options{
		Trees:                   5,
		SubSample:               256,
		Augment:                 64,
		TauSplit:                1e-2,
		MaxCandidatesPerFeature: 32,
		Seed:                    1,
	}
}

// Validate reports the first invalid field, or nil for a usable
// configuration. Fit calls it; iguard.Config.Validate folds it into
// the public pre-flight check.
func (o Options) Validate() error {
	if o.Trees <= 0 {
		return fmt.Errorf("core: Trees must be positive, got %d", o.Trees)
	}
	if o.SubSample <= 0 {
		return fmt.Errorf("core: SubSample must be positive, got %d", o.SubSample)
	}
	if o.Augment < 0 {
		return fmt.Errorf("core: Augment must be non-negative, got %d", o.Augment)
	}
	if o.DistillAugment < 0 {
		return fmt.Errorf("core: DistillAugment must be non-negative, got %d", o.DistillAugment)
	}
	if o.TauSplit < 0 || o.TauSplit > 1 {
		return fmt.Errorf("core: TauSplit must be in [0,1], got %v", o.TauSplit)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be non-negative (0 = GOMAXPROCS), got %d", o.Parallelism)
	}
	return nil
}

// node is one guided-iTree node. Leaves carry the distilled label.
type node struct {
	Feature int
	Split   float64
	Left    *node
	Right   *node

	// Leaf fields.
	Label  int
	Box    rules.Box
	MeanRE []float64
	// Size is the number of training samples that reached the node.
	Size int
}

func (n *node) isLeaf() bool { return n.Left == nil }

// Tree is one guided isolation tree.
type Tree struct {
	root   *node
	bounds rules.Box
}

// Forest is the trained, distilled iGuard forest.
type Forest struct {
	Trees []*Tree
	Dim   int
	opts  Options
}

// Per-phase stream tags for mathx.DeriveSeed: the growth phase draws
// its per-tree seeds from (Seed, growStream), the distillation phase
// from (Seed, distillStream), keeping the two phases' random streams
// disjoint. Within a phase, per-tree seeds are drawn serially in tree
// order before the parallel fan-out, so every tree owns an independent
// stream regardless of worker count.
const (
	growStream    int64 = 11000 // growth-phase stream tag
	distillStream int64 = 11001 // distillation-phase stream tag
)

// phaseSeeds derives n per-unit seeds for one training phase: a single
// serial pass over a (seed, stream)-keyed generator, indexed by unit.
func phaseSeeds(seed, stream int64, n int) []int64 {
	r := mathx.NewRand(mathx.DeriveSeed(seed, stream))
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

// Fit grows the guided forest on benign training features x using the
// guide for node-expansion decisions (§3.2.1), then distils leaf labels
// from the guide (§3.2.2). It returns an error for invalid options or an
// empty training set.
func Fit(x [][]float64, guide Guide, opts Options) (*Forest, error) {
	return FitContext(context.Background(), x, guide, opts)
}

// FitContext is Fit with cooperative cancellation and bounded
// parallelism: trees grow and distil concurrently under
// opts.Parallelism workers, and a cancelled ctx abandons the units not
// yet started and returns ctx.Err(). Each tree's randomness derives
// from (opts.Seed, tree index), so the forest is identical for every
// worker count. The guide must be safe for concurrent read-only use
// (autoencoder ensembles are: inference is stateless).
func FitContext(ctx context.Context, x [][]float64, guide Guide, opts Options) (*Forest, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	dim := len(x[0])
	psi := opts.SubSample
	if psi > len(x) {
		psi = len(x)
	}
	maxHeight := int(math.Ceil(math.Log2(float64(psi))))
	if maxHeight < 1 {
		maxHeight = 1
	}
	f := &Forest{Dim: dim, opts: opts, Trees: make([]*Tree, opts.Trees)}
	seeds := phaseSeeds(opts.Seed, growStream, opts.Trees)
	err := parallel.For(ctx, opts.Parallelism, opts.Trees, func(t int) error {
		r := mathx.NewRand(seeds[t])
		idx := mathx.SampleWithoutReplacement(r, len(x), psi)
		sample := make([][]float64, len(idx))
		for i, j := range idx {
			sample[i] = x[j]
		}
		f.Trees[t] = growGuidedTree(r, sample, dim, maxHeight, guide, opts)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := f.Distill(ctx, x, guide); err != nil {
		return nil, err
	}
	f.Prune()
	return f, nil
}

// boundsOf returns the half-open bounding box of sample.
func boundsOf(sample [][]float64, dim int) rules.Box {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := 0; j < dim; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, s := range sample {
		for j, v := range s {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	for j := 0; j < dim; j++ {
		if math.IsInf(lo[j], 1) {
			lo[j], hi[j] = 0, 0
		}
		hi[j] = math.Nextafter(hi[j], math.Inf(1))
	}
	return rules.NewBox(lo, hi)
}

// augmentBox draws k synthetic points from the node's feature ranges
// per footnote 7: per-feature normal with mean at the range midpoint and
// standard deviation equal to the range's quartile spread, clamped into
// the box.
func augmentBox(r *rand.Rand, box rules.Box, k int) [][]float64 {
	out := make([][]float64, 0, k)
	for i := 0; i < k; i++ {
		p := make([]float64, len(box))
		for j, iv := range box {
			sd := iv.Width() / 4 // quartile range of a uniform span
			v := mathx.NormalSample(r, iv.Mid(), sd)
			hi := iv.Hi
			if iv.Width() > 0 {
				hi = math.Nextafter(iv.Hi, math.Inf(-1))
			}
			p[j] = mathx.Clamp(v, iv.Lo, hi)
		}
		out = append(out, p)
	}
	return out
}

// augmentForSplit draws the k split-search probes as a mixture: half
// from footnote 7's node-range normal distribution, half as
// axis-perturbed real samples — a random member with one to three
// random features resampled uniformly over the node's range. The latter
// concentrates probes exactly where the threat model lives (benign-like
// points with a few features off the joint manifold), letting the
// entropy search discover thin interior anomaly slivers that volume
// sampling would almost never hit.
func augmentForSplit(r *rand.Rand, box rules.Box, k int, xNode [][]float64) [][]float64 {
	if k <= 0 {
		return nil
	}
	if len(xNode) == 0 {
		return augmentBox(r, box, k)
	}
	half := k / 2
	out := augmentBox(r, box, k-half)
	for i := 0; i < half; i++ {
		base := xNode[r.Intn(len(xNode))]
		p := append([]float64(nil), base...)
		// Exactly one feature resampled: an axis probe through a real
		// member, which is how guide-boundary crossings (and thus thin
		// interior anomaly slivers) get sampled.
		j := r.Intn(len(box))
		if box[j].Width() > 0 {
			p[j] = box[j].Lo + r.Float64()*box[j].Width()
		}
		out = append(out, p)
	}
	return out
}

func growGuidedTree(r *rand.Rand, sample [][]float64, dim, maxHeight int, guide Guide, opts Options) *Tree {
	dataBounds := boundsOf(sample, dim)
	if len(opts.Bounds) == 0 {
		root := buildGuidedNode(r, sample, dataBounds.Clone(), 0, maxHeight, guide, opts)
		return &Tree{root: root, bounds: dataBounds}
	}
	if len(opts.Bounds) != dim {
		panic(fmt.Sprintf("core: Bounds has %d dims, data has %d", len(opts.Bounds), dim))
	}
	margin := opts.BoundsMargin
	if margin <= 0 {
		margin = 0.1
	}
	inflated := dataBounds.Clone()
	for i := range inflated {
		m := inflated[i].Width() * margin
		inflated[i] = rules.Interval{
			Lo: math.Max(opts.Bounds[i].Lo, inflated[i].Lo-m),
			Hi: math.Min(opts.Bounds[i].Hi, inflated[i].Hi+m),
		}
	}
	inner := buildGuidedNode(r, sample, inflated.Clone(), 0, maxHeight, guide, opts)
	root := graftBoundaryPeel(inner, inflated, opts.Bounds)
	return &Tree{root: root, bounds: opts.Bounds.Clone()}
}

// graftBoundaryPeel wraps the inner tree with splits at the inflated
// data bounds, one low/high pair per dimension where the outer box
// extends beyond them. The peeled regions become leaves (labelled later
// by distillation); the innermost position holds the data-grown tree.
func graftBoundaryPeel(inner *node, dataBounds, outer rules.Box) *node {
	cur := inner
	box := dataBounds.Clone()
	// Peel from the innermost dimension outwards so the final root
	// covers the full outer box.
	for d := len(outer) - 1; d >= 0; d-- {
		if outer[d].Hi > box[d].Hi {
			highBox := box.Clone()
			highBox[d] = rules.Interval{Lo: box[d].Hi, Hi: outer[d].Hi}
			split := box[d].Hi
			box[d] = rules.Interval{Lo: box[d].Lo, Hi: outer[d].Hi}
			cur = &node{
				Feature: d,
				Split:   split,
				Left:    cur,
				Right:   &node{Box: highBox},
				Box:     box.Clone(),
			}
		}
		if outer[d].Lo < box[d].Lo {
			lowBox := box.Clone()
			lowBox[d] = rules.Interval{Lo: outer[d].Lo, Hi: box[d].Lo}
			split := box[d].Lo
			box[d] = rules.Interval{Lo: outer[d].Lo, Hi: box[d].Hi}
			cur = &node{
				Feature: d,
				Split:   split,
				Left:    &node{Box: lowBox},
				Right:   cur,
				Box:     box.Clone(),
			}
		}
	}
	return cur
}

// labelledSet carries X_decision with guide labels.
type labelledSet struct {
	pts    [][]float64
	labels []int
	nMal   int
}

func labelSet(guide Guide, pts [][]float64) labelledSet {
	ls := labelledSet{pts: pts, labels: make([]int, len(pts))}
	for i, p := range pts {
		ls.labels[i] = guide.Predict(p)
		ls.nMal += ls.labels[i]
	}
	return ls
}

// entropy returns H over the set's malicious fraction (Eq. 2).
func (ls labelledSet) entropy() float64 {
	if len(ls.pts) == 0 {
		return 0
	}
	return mathx.Entropy2(float64(ls.nMal) / float64(len(ls.pts)))
}

// skewRatio returns min(|mal|,|ben|)/max(|mal|,|ben|) — the quantity the
// third stopping criterion compares against τ_split.
func (ls labelledSet) skewRatio() float64 {
	mal := ls.nMal
	ben := len(ls.pts) - mal
	lo, hi := mal, ben
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 0
	}
	return float64(lo) / float64(hi)
}

func buildGuidedNode(r *rand.Rand, xNode [][]float64, box rules.Box, height, maxHeight int, guide Guide, opts Options) *node {
	n := &node{Size: len(xNode), Box: box}
	// Stopping criteria 1 and 2.
	if len(xNode) <= 1 || height >= maxHeight {
		return n
	}
	// Build X_decision = X_node ∪ X_aug and label it with the guide.
	xAug := augmentForSplit(r, box, opts.Augment, xNode)
	decision := make([][]float64, 0, len(xNode)+len(xAug))
	decision = append(decision, xNode...)
	decision = append(decision, xAug...)
	ls := labelSet(guide, decision)
	// Stopping criterion 3: the node is already heavily skewed.
	if ls.skewRatio() < opts.TauSplit {
		return n
	}
	// Split choice: exhaustive information-gain search over (q, p)
	// (Eq. 3–4), or the conventional random choice under the ablation.
	var q int
	var p float64
	if opts.RandomSplits {
		var ok bool
		q, p, ok = randomSplit(r, xNode)
		if !ok {
			return n
		}
	} else {
		var gain float64
		q, p, gain = bestSplit(ls, len(box), opts.MaxCandidatesPerFeature)
		if gain <= 0 {
			return n
		}
	}
	// Partition the real samples (not the augmented ones) for recursion.
	var left, right [][]float64
	for _, s := range xNode {
		if s[q] < p {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	leftBox := box.Clone()
	leftBox[q] = rules.Interval{Lo: box[q].Lo, Hi: p}
	rightBox := box.Clone()
	rightBox[q] = rules.Interval{Lo: p, Hi: box[q].Hi}
	n.Feature = q
	n.Split = p
	n.Left = buildGuidedNode(r, left, leftBox, height+1, maxHeight, guide, opts)
	n.Right = buildGuidedNode(r, right, rightBox, height+1, maxHeight, guide, opts)
	return n
}

// randomSplit implements the conventional iForest node choice: a random
// feature with spread in the real samples and a uniform split point
// inside its observed range. Returns ok=false when no feature has
// spread.
func randomSplit(r *rand.Rand, xNode [][]float64) (q int, p float64, ok bool) {
	if len(xNode) == 0 {
		return 0, 0, false
	}
	dim := len(xNode[0])
	for _, q := range r.Perm(dim) {
		lo, hi := xNode[0][q], xNode[0][q]
		for _, s := range xNode[1:] {
			if s[q] < lo {
				lo = s[q]
			}
			if s[q] > hi {
				hi = s[q]
			}
		}
		if hi <= lo {
			continue
		}
		return q, lo + r.Float64()*(hi-lo), true
	}
	return 0, 0, false
}

// bestSplit scans candidate split points per feature and returns the
// (q*, p*) pair maximising H(node) − H(node.children), plus the gain.
// Candidates are midpoints between consecutive distinct sorted feature
// values of X_decision; maxPerFeature > 0 strides the candidate list
// down to at most that many.
//
// Greedy single-threshold search is myopic about interior anomaly
// slivers: isolating an interval [p1, p2) needs two coordinated splits
// whose first step alone shows almost no gain (the XOR problem). The
// search therefore also scores interval isolation per feature — the
// three-way gain of carving [p1, p2) out — and when an interval beats
// every single split, the node splits at its lower edge; the child's
// own search then finds the upper edge, where the gain has become
// visible.
func bestSplit(ls labelledSet, dim, maxPerFeature int) (bestQ int, bestP float64, bestGain float64) {
	parentH := ls.entropy()
	total := len(ls.pts)
	bestQ, bestGain = -1, 0

	type valLabel struct {
		v     float64
		label int
	}
	for q := 0; q < dim; q++ {
		vals := make([]valLabel, total)
		for i, pt := range ls.pts {
			vals[i] = valLabel{pt[q], ls.labels[i]}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })

		// Walk distinct-value boundaries accumulating left-side counts.
		leftN, leftMal := 0, 0
		type boundary struct {
			p       float64
			leftN   int
			leftMal int
		}
		var bounds []boundary
		for i := 0; i < total; {
			j := i
			for j < total && vals[j].v == vals[i].v { //iguard:allow(floatcompare) tie grouping wants exact identity
				leftN++
				leftMal += vals[j].label
				j++
			}
			if j < total {
				bounds = append(bounds, boundary{
					p:       (vals[j-1].v + vals[j].v) / 2,
					leftN:   leftN,
					leftMal: leftMal,
				})
			}
			i = j
		}
		stride := 1
		if maxPerFeature > 0 && len(bounds) > maxPerFeature {
			stride = (len(bounds) + maxPerFeature - 1) / maxPerFeature
		}
		var cands []boundary
		for bi := 0; bi < len(bounds); bi += stride {
			cands = append(cands, bounds[bi])
		}
		// Single-threshold candidates.
		for _, b := range cands {
			rightN := total - b.leftN
			rightMal := ls.nMal - b.leftMal
			wLeft := float64(b.leftN) / float64(total)
			hLeft := mathx.Entropy2(float64(b.leftMal) / float64(b.leftN))
			hRight := mathx.Entropy2(float64(rightMal) / float64(rightN))
			gain := parentH - (wLeft*hLeft + (1-wLeft)*hRight)
			if gain > bestGain {
				bestQ, bestP, bestGain = q, b.p, gain
			}
		}
		// Interval candidates [cands[a].p, cands[b].p): three-way gain,
		// realised by splitting at the lower edge now.
		for a := 0; a < len(cands); a++ {
			for c := a + 1; c < len(cands); c++ {
				midN := cands[c].leftN - cands[a].leftN
				midMal := cands[c].leftMal - cands[a].leftMal
				if midN == 0 {
					continue
				}
				loN, loMal := cands[a].leftN, cands[a].leftMal
				hiN := total - cands[c].leftN
				hiMal := ls.nMal - cands[c].leftMal
				h := 0.0
				if loN > 0 {
					h += float64(loN) / float64(total) * mathx.Entropy2(float64(loMal)/float64(loN))
				}
				h += float64(midN) / float64(total) * mathx.Entropy2(float64(midMal)/float64(midN))
				if hiN > 0 {
					h += float64(hiN) / float64(total) * mathx.Entropy2(float64(hiMal)/float64(hiN))
				}
				gain := parentH - h
				if gain > bestGain {
					bestQ, bestP, bestGain = q, cands[a].p, gain
					if loN == 0 {
						// Degenerate interval starting at the left edge:
						// realise it by splitting at the upper edge
						// instead (the lower edge separates nothing).
						bestP = cands[c].p
					}
				}
			}
		}
	}
	return bestQ, bestP, bestGain
}

// Distill implements §3.2.2: route every training sample to its leaf in
// every tree, augment each leaf with k synthetic points from the leaf's
// feature range, embed per-member expected reconstruction errors
// (Eq. 5) and transform them into leaf labels (Eq. 6). Fit calls this
// automatically; it is exported so callers can re-distil with a
// different guide. Trees distil concurrently under the forest's
// Parallelism option, each from its own (Seed, tree index)-derived
// stream; a cancelled ctx abandons remaining trees and returns
// ctx.Err().
func (f *Forest) Distill(ctx context.Context, xTrain [][]float64, guide Guide) error {
	seeds := phaseSeeds(f.opts.Seed, distillStream, len(f.Trees))
	return parallel.For(ctx, f.opts.Parallelism, len(f.Trees), func(ti int) error {
		t := f.Trees[ti]
		r := mathx.NewRand(seeds[ti])
		// Gather leaf membership.
		members := map[*node][][]float64{}
		for _, x := range xTrain {
			leaf := t.route(x)
			members[leaf] = append(members[leaf], x)
		}
		var walk func(n *node)
		walk = func(n *node) {
			if !n.isLeaf() {
				walk(n.Left)
				walk(n.Right)
				return
			}
			xLeaf := members[n]
			k := f.opts.DistillAugment
			if k == 0 {
				k = f.opts.Augment
			}
			xLeaf = append(xLeaf, augmentBox(r, n.Box, k)...)
			if len(xLeaf) == 0 {
				n.Label = 0
				return
			}
			var sums []float64
			for _, x := range xLeaf {
				errs := guide.PerMemberErrors(x)
				if sums == nil {
					sums = make([]float64, len(errs))
				}
				for i, e := range errs {
					sums[i] += e
				}
			}
			for i := range sums {
				sums[i] /= float64(len(xLeaf))
			}
			n.MeanRE = sums
			n.Label = guide.LabelLeafByMeanRE(sums)
		}
		walk(t.root)
		return nil
	})
}

// Prune collapses sibling leaves that received the same distilled label
// into their parent (the split separated nothing after distillation).
// Predictions are unchanged — the same feature region keeps the same
// label — while leaf counts, and therefore whitelist-rule hypercube
// counts, shrink substantially. Fit calls this after Distill.
func (f *Forest) Prune() {
	for _, t := range f.Trees {
		t.root = pruneNode(t.root)
	}
}

func pruneNode(n *node) *node {
	if n.isLeaf() {
		return n
	}
	n.Left = pruneNode(n.Left)
	n.Right = pruneNode(n.Right)
	if n.Left.isLeaf() && n.Right.isLeaf() && n.Left.Label == n.Right.Label {
		merged := &node{
			Label: n.Left.Label,
			Size:  n.Left.Size + n.Right.Size,
			Box:   n.Box,
		}
		// Weighted mean of the children's expected reconstruction errors
		// keeps the distillation data inspectable after pruning.
		if len(n.Left.MeanRE) == len(n.Right.MeanRE) && len(n.Left.MeanRE) > 0 {
			merged.MeanRE = make([]float64, len(n.Left.MeanRE))
			for i := range merged.MeanRE {
				merged.MeanRE[i] = (n.Left.MeanRE[i] + n.Right.MeanRE[i]) / 2
			}
		}
		return merged
	}
	return n
}

// route walks x down the tree to its leaf.
func (t *Tree) route(x []float64) *node {
	n := t.root
	for !n.isLeaf() {
		if x[n.Feature] < n.Split {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Votes returns the number of trees labelling x malicious.
func (f *Forest) Votes(x []float64) int {
	v := 0
	for _, t := range f.Trees {
		v += t.route(x).Label
	}
	return v
}

// Predict returns the majority vote across trees (ties resolve benign,
// keeping the whitelist conservative).
func (f *Forest) Predict(x []float64) int {
	if 2*f.Votes(x) > len(f.Trees) {
		return 1
	}
	return 0
}

// Score returns the malicious vote fraction in [0, 1], a continuous
// anomaly score for AUC computation.
func (f *Forest) Score(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	return float64(f.Votes(x)) / float64(len(f.Trees))
}

// LabelledLeafRegions returns every leaf's box and distilled label for
// tree ti.
func (f *Forest) LabelledLeafRegions(ti int) (boxes []rules.Box, labels []int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			boxes = append(boxes, n.Box)
			labels = append(labels, n.Label)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(f.Trees[ti].root)
	return boxes, labels
}

// LabelledLeafRegionsWithin returns tree ti's leaf boxes rooted at an
// explicit outer box (e.g. the full quantised feature domain for rule
// generation). Boundary leaves extend outward exactly as the routing
// comparison against split values does, so rules generated from these
// regions agree with Predict everywhere inside root.
func (f *Forest) LabelledLeafRegionsWithin(ti int, root rules.Box) (boxes []rules.Box, labels []int) {
	var walk func(n *node, box rules.Box)
	walk = func(n *node, box rules.Box) {
		if n.isLeaf() {
			boxes = append(boxes, box)
			labels = append(labels, n.Label)
			return
		}
		left := box.Clone()
		left[n.Feature] = rules.Interval{Lo: box[n.Feature].Lo, Hi: n.Split}
		right := box.Clone()
		right[n.Feature] = rules.Interval{Lo: n.Split, Hi: box[n.Feature].Hi}
		walk(n.Left, left)
		walk(n.Right, right)
	}
	walk(f.Trees[ti].root, root.Clone())
	return boxes, labels
}

// Bounds returns the training bounding box of tree ti.
func (f *Forest) Bounds(ti int) rules.Box { return f.Trees[ti].bounds }

// SplitValues returns, per feature, the sorted distinct split points
// used anywhere in the forest.
func (f *Forest) SplitValues() [][]float64 {
	seen := make([]map[float64]bool, f.Dim)
	for i := range seen {
		seen[i] = map[float64]bool{}
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			return
		}
		seen[n.Feature][n.Split] = true
		walk(n.Left)
		walk(n.Right)
	}
	for _, t := range f.Trees {
		walk(t.root)
	}
	out := make([][]float64, f.Dim)
	for i, m := range seen {
		for v := range m { //iguard:sorted values are collected then sorted below
			out[i] = append(out[i], v)
		}
		sort.Float64s(out[i])
	}
	return out
}

// NumLeaves returns the total leaf count across trees.
func (f *Forest) NumLeaves() int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			count++
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	for _, t := range f.Trees {
		walk(t.root)
	}
	return count
}

// MaxDepth returns the deepest leaf depth across trees.
func (f *Forest) MaxDepth() int {
	max := 0
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n.isLeaf() {
			if d > max {
				max = d
			}
			return
		}
		walk(n.Left, d+1)
		walk(n.Right, d+1)
	}
	for _, t := range f.Trees {
		walk(t.root, 0)
	}
	return max
}

// TrainedOptions returns the options the forest was trained with.
func (f *Forest) TrainedOptions() Options { return f.opts }
