package core

import (
	"math"
	"testing"

	"iguard/internal/mathx"
	"iguard/internal/rules"
)

// oracleGuide is a deterministic stand-in for the autoencoder ensemble:
// a sample is "malicious" when its first feature exceeds cut. Its
// reconstruction error is the (positive) distance above the cut.
type oracleGuide struct {
	cut float64
}

func (g oracleGuide) Predict(x []float64) int {
	if x[0] > g.cut {
		return 1
	}
	return 0
}

func (g oracleGuide) PerMemberErrors(x []float64) []float64 {
	return []float64{x[0] - g.cut}
}

func (g oracleGuide) LabelLeafByMeanRE(meanRE []float64) int {
	if meanRE[0] > 0 {
		return 1
	}
	return 0
}

// mixedData returns points uniform in [0,1]^dim: some fall on each side
// of the oracle's cut, so guided training has something to separate.
func mixedData(seed int64, n, dim int) [][]float64 {
	r := mathx.NewRand(seed)
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = r.Float64()
		}
		out[i] = v
	}
	return out
}

func fitOracle(t *testing.T, seed int64) *Forest {
	t.Helper()
	opts := DefaultOptions()
	opts.Trees = 5
	opts.SubSample = 128
	opts.Augment = 32
	opts.Seed = seed
	f, err := Fit(mixedData(seed, 400, 3), oracleGuide{cut: 0.7}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFitValidation(t *testing.T) {
	g := oracleGuide{cut: 0.5}
	if _, err := Fit(nil, g, DefaultOptions()); err == nil {
		t.Error("want error on empty training set")
	}
	bad := DefaultOptions()
	bad.Trees = 0
	if _, err := Fit(mixedData(1, 10, 2), g, bad); err == nil {
		t.Error("want error on Trees = 0")
	}
	bad = DefaultOptions()
	bad.TauSplit = 2
	if _, err := Fit(mixedData(1, 10, 2), g, bad); err == nil {
		t.Error("want error on TauSplit > 1")
	}
	bad = DefaultOptions()
	bad.Augment = -1
	if _, err := Fit(mixedData(1, 10, 2), g, bad); err == nil {
		t.Error("want error on negative Augment")
	}
	bad = DefaultOptions()
	bad.SubSample = 0
	if _, err := Fit(mixedData(1, 10, 2), g, bad); err == nil {
		t.Error("want error on SubSample = 0")
	}
}

func TestGuidedForestMatchesOracle(t *testing.T) {
	f := fitOracle(t, 11)
	// The distilled forest must reproduce the oracle decision almost
	// everywhere.
	test := mixedData(12, 500, 3)
	agree := 0
	g := oracleGuide{cut: 0.7}
	for _, x := range test {
		if f.Predict(x) == g.Predict(x) {
			agree++
		}
	}
	if frac := float64(agree) / 500; frac < 0.95 {
		t.Errorf("oracle agreement = %v, want >= 0.95", frac)
	}
}

func TestSplitsConcentrateOnInformativeFeature(t *testing.T) {
	f := fitOracle(t, 13)
	splits := f.SplitValues()
	// Feature 0 is the only informative one; the guided trees should
	// split on it near the cut. Other features may appear but feature 0
	// must dominate.
	if len(splits[0]) == 0 {
		t.Fatal("no splits on the informative feature")
	}
	nearCut := 0
	for _, p := range splits[0] {
		if math.Abs(p-0.7) < 0.15 {
			nearCut++
		}
	}
	if nearCut == 0 {
		t.Errorf("no split near the oracle cut; splits on f0: %v", splits[0])
	}
}

func TestScoreIsVoteFraction(t *testing.T) {
	f := fitOracle(t, 15)
	x := []float64{0.9, 0.5, 0.5}
	votes := f.Votes(x)
	want := float64(votes) / float64(len(f.Trees))
	if got := f.Score(x); got != want {
		t.Errorf("Score = %v, want %v", got, want)
	}
	if s := f.Score(x); s < 0 || s > 1 {
		t.Errorf("Score out of range: %v", s)
	}
}

func TestPredictMajorityTieIsBenign(t *testing.T) {
	// Construct a forest with an even number of trees manually voting
	// 1:1; Predict must return 0 (benign) on ties.
	leafMal := &node{Label: 1, Box: rules.FullBox(1, 0, 1)}
	leafBen := &node{Label: 0, Box: rules.FullBox(1, 0, 1)}
	f := &Forest{
		Trees: []*Tree{
			{root: leafMal, bounds: rules.FullBox(1, 0, 1)},
			{root: leafBen, bounds: rules.FullBox(1, 0, 1)},
		},
		Dim: 1,
	}
	if got := f.Predict([]float64{0.5}); got != 0 {
		t.Errorf("tie Predict = %d, want 0", got)
	}
}

func TestStoppingCriterionSkew(t *testing.T) {
	// A guide that labels everything benign: trees must stop immediately
	// (skew ratio 0 < τ_split) leaving single-leaf trees.
	opts := DefaultOptions()
	opts.Trees = 3
	opts.SubSample = 64
	opts.Seed = 17
	f, err := Fit(mixedData(17, 200, 2), oracleGuide{cut: 2}, opts) // cut=2: nothing malicious
	if err != nil {
		t.Fatal(err)
	}
	if f.NumLeaves() != 3 {
		t.Errorf("all-benign guide grew %d leaves, want 3 (one per tree)", f.NumLeaves())
	}
	if f.MaxDepth() != 0 {
		t.Errorf("max depth = %d, want 0", f.MaxDepth())
	}
}

func TestMaxDepthRespectsHeightCap(t *testing.T) {
	opts := DefaultOptions()
	opts.Trees = 4
	opts.SubSample = 64
	opts.TauSplit = 0.5 // aggressive splitting
	opts.Seed = 19
	f, err := Fit(mixedData(19, 300, 3), oracleGuide{cut: 0.5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	limit := int(math.Ceil(math.Log2(64)))
	if d := f.MaxDepth(); d > limit {
		t.Errorf("depth %d exceeds cap %d", d, limit)
	}
}

func TestLabelledLeafRegionsTile(t *testing.T) {
	f := fitOracle(t, 21)
	r := mathx.NewRand(22)
	for ti := range f.Trees {
		boxes, labels := f.LabelledLeafRegions(ti)
		if len(boxes) != len(labels) {
			t.Fatalf("boxes/labels length mismatch: %d vs %d", len(boxes), len(labels))
		}
		bounds := f.Bounds(ti)
		for trial := 0; trial < 30; trial++ {
			p := make([]float64, f.Dim)
			for j := range p {
				p[j] = bounds[j].Lo + r.Float64()*(bounds[j].Hi-bounds[j].Lo)
			}
			hits := 0
			for _, b := range boxes {
				if b.Contains(p) {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("tree %d: point in %d leaf regions, want 1", ti, hits)
			}
		}
	}
}

func TestLeafRegionLabelsMatchRouting(t *testing.T) {
	// The label of the region containing x must equal the tree's routed
	// label for x.
	f := fitOracle(t, 23)
	test := mixedData(24, 100, 3)
	for ti, tree := range f.Trees {
		boxes, labels := f.LabelledLeafRegions(ti)
		for _, x := range test {
			if !f.Bounds(ti).Contains(x) {
				continue
			}
			routed := tree.route(x).Label
			for bi, b := range boxes {
				if b.Contains(x) {
					if labels[bi] != routed {
						t.Fatalf("tree %d: region label %d != routed label %d", ti, labels[bi], routed)
					}
					break
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := fitOracle(t, 31)
	b := fitOracle(t, 31)
	probe := []float64{0.42, 0.13, 0.77}
	if a.Score(probe) != b.Score(probe) {
		t.Error("same seed produced different forests")
	}
	if a.NumLeaves() != b.NumLeaves() {
		t.Error("same seed produced different structures")
	}
}

func TestDistillSetsMeanRE(t *testing.T) {
	f := fitOracle(t, 33)
	found := false
	for ti := range f.Trees {
		boxes, _ := f.LabelledLeafRegions(ti)
		if len(boxes) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no leaves")
	}
	// Leaves well above the cut must be labelled malicious; below, benign.
	if got := f.Predict([]float64{0.95, 0.5, 0.5}); got != 1 {
		t.Errorf("deep-malicious point predicted %d, want 1", got)
	}
	if got := f.Predict([]float64{0.1, 0.5, 0.5}); got != 0 {
		t.Errorf("deep-benign point predicted %d, want 0", got)
	}
}

func TestAugmentBoxWithinBounds(t *testing.T) {
	r := mathx.NewRand(35)
	box := rules.NewBox([]float64{0, 10}, []float64{1, 20})
	pts := augmentBox(r, box, 200)
	if len(pts) != 200 {
		t.Fatalf("augmented %d points, want 200", len(pts))
	}
	for _, p := range pts {
		if !box.Contains(p) {
			t.Fatalf("augmented point %v outside box %v", p, box)
		}
	}
}

func TestAugmentBoxDegenerate(t *testing.T) {
	r := mathx.NewRand(36)
	// Zero-width box: all samples equal the single point.
	box := rules.NewBox([]float64{5}, []float64{5})
	pts := augmentBox(r, box, 10)
	for _, p := range pts {
		if p[0] != 5 {
			t.Fatalf("degenerate box sample = %v, want 5", p[0])
		}
	}
}

func TestBestSplitFindsPerfectSeparation(t *testing.T) {
	// Points below 0 labelled 0, above labelled 1: gain must be the full
	// parent entropy and the split must land between the groups.
	pts := [][]float64{{-2}, {-1}, {1}, {2}}
	ls := labelledSet{pts: pts, labels: []int{0, 0, 1, 1}, nMal: 2}
	q, p, gain := bestSplit(ls, 1, 0)
	if q != 0 {
		t.Errorf("split feature = %d, want 0", q)
	}
	if p <= -1 || p >= 1 {
		t.Errorf("split point = %v, want in (-1, 1)", p)
	}
	if math.Abs(gain-1) > 1e-12 {
		t.Errorf("gain = %v, want 1 (full entropy)", gain)
	}
}

func TestBestSplitNoGainOnPureSet(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	ls := labelledSet{pts: pts, labels: []int{0, 0, 0}, nMal: 0}
	q, _, gain := bestSplit(ls, 1, 0)
	if gain != 0 || q != -1 {
		t.Errorf("pure set: q=%d gain=%v, want q=-1 gain=0", q, gain)
	}
}

func TestBestSplitCandidateCap(t *testing.T) {
	// With a cap of 1 candidate per feature the search still returns a
	// valid split on separable data.
	r := mathx.NewRand(37)
	var pts [][]float64
	var labels []int
	nMal := 0
	for i := 0; i < 100; i++ {
		v := r.Float64()
		pts = append(pts, []float64{v})
		l := 0
		if v > 0.5 {
			l = 1
		}
		labels = append(labels, l)
		nMal += l
	}
	ls := labelledSet{pts: pts, labels: labels, nMal: nMal}
	_, _, gainFull := bestSplit(ls, 1, 0)
	qc, _, gainCapped := bestSplit(ls, 1, 1)
	if gainFull <= 0 {
		t.Fatal("full search found no gain")
	}
	if qc != 0 && gainCapped != 0 {
		t.Errorf("capped search returned feature %d", qc)
	}
}

func TestTrainedOptionsRoundTrip(t *testing.T) {
	f := fitOracle(t, 39)
	if f.TrainedOptions().Trees != 5 {
		t.Errorf("TrainedOptions.Trees = %d", f.TrainedOptions().Trees)
	}
}
