package core

import (
	"context"
	"encoding/json"
	"testing"
)

// TestFitParallelismInvariance pins the determinism contract: per-tree
// seeds are drawn serially before the fan-out, so the fitted (and
// distilled) forest is byte-identical for every worker count.
func TestFitParallelismInvariance(t *testing.T) {
	x := mixedData(41, 400, 3)
	fit := func(workers int) []byte {
		opts := DefaultOptions()
		opts.Trees = 5
		opts.SubSample = 128
		opts.Augment = 16
		opts.Seed = 41
		opts.Parallelism = workers
		f, err := Fit(x, oracleGuide{cut: 0.7}, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := fit(1)
	for _, p := range []int{2, 4, 8} {
		if got := fit(p); string(got) != string(want) {
			t.Errorf("Parallelism=%d produced a different forest", p)
		}
	}
}

func TestFitContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Trees = 3
	opts.SubSample = 64
	opts.Seed = 1
	if _, err := FitContext(ctx, mixedData(42, 200, 3), oracleGuide{cut: 0.7}, opts); err == nil {
		t.Error("want error from cancelled context")
	}
}
