package core

import (
	"encoding/json"
	"fmt"

	"iguard/internal/rules"
)

// nodeJSON is the serialised tree node. Leaves carry label/box/meanRE;
// internal nodes carry the split and children.
type nodeJSON struct {
	Feature int       `json:"q,omitempty"`
	Split   float64   `json:"p,omitempty"`
	Left    *nodeJSON `json:"l,omitempty"`
	Right   *nodeJSON `json:"r,omitempty"`
	Label   int       `json:"label,omitempty"`
	Box     rules.Box `json:"box,omitempty"`
	MeanRE  []float64 `json:"re,omitempty"`
	Size    int       `json:"n,omitempty"`
}

type treeJSON struct {
	Root   *nodeJSON `json:"root"`
	Bounds rules.Box `json:"bounds"`
}

type forestJSON struct {
	Trees []treeJSON `json:"trees"`
	Dim   int        `json:"dim"`
	Opts  Options    `json:"opts"`
}

func encodeNode(n *node) *nodeJSON {
	if n == nil {
		return nil
	}
	return &nodeJSON{
		Feature: n.Feature,
		Split:   n.Split,
		Left:    encodeNode(n.Left),
		Right:   encodeNode(n.Right),
		Label:   n.Label,
		Box:     n.Box,
		MeanRE:  n.MeanRE,
		Size:    n.Size,
	}
}

func decodeNode(j *nodeJSON) *node {
	if j == nil {
		return nil
	}
	return &node{
		Feature: j.Feature,
		Split:   j.Split,
		Left:    decodeNode(j.Left),
		Right:   decodeNode(j.Right),
		Label:   j.Label,
		Box:     j.Box,
		MeanRE:  j.MeanRE,
		Size:    j.Size,
	}
}

// MarshalJSON serialises the trained, distilled forest (structure, leaf
// labels and distillation data) so deployments can persist and reload
// full-fidelity detectors.
func (f *Forest) MarshalJSON() ([]byte, error) {
	out := forestJSON{Dim: f.Dim, Opts: f.opts}
	for _, t := range f.Trees {
		out.Trees = append(out.Trees, treeJSON{Root: encodeNode(t.root), Bounds: t.bounds})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a forest serialised by MarshalJSON.
func (f *Forest) UnmarshalJSON(data []byte) error {
	var in forestJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: forest decode: %w", err)
	}
	f.Dim = in.Dim
	f.opts = in.Opts
	f.Trees = nil
	for _, tj := range in.Trees {
		if tj.Root == nil {
			return fmt.Errorf("core: forest decode: tree without root")
		}
		f.Trees = append(f.Trees, &Tree{root: decodeNode(tj.Root), bounds: tj.Bounds})
	}
	return nil
}
