// Package mathx provides the small numeric substrate shared by every
// other package in the repository: summary statistics, histogramming,
// and a deterministic random source.
//
// All randomness in the repository flows through *rand.Rand instances
// created by NewRand so that every experiment is reproducible from its
// seed alone.
package mathx

import (
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic random source for the given seed.
// Every stochastic component in the repository takes one of these
// rather than using the global source.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// DeriveSeed derives the seed of an independent random stream from a
// base seed and a stream index using one splitmix64 mixing round.
// Parallel training units (trees, ensemble members, grid candidates)
// each seed their own NewRand from DeriveSeed(base, unit), so every
// unit's randomness is a pure function of (base seed, unit index) and
// results cannot depend on scheduling order or worker count.
func DeriveSeed(seed, stream int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(stream)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs need not be sorted. It returns
// 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IQR returns the interquartile range (Q3 - Q1) of xs.
func IQR(xs []float64) float64 {
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}

// Entropy2 returns the binary entropy -p·log2(p) - (1-p)·log2(1-p),
// with the convention 0·log2(0) = 0 so that Entropy2(0) = Entropy2(1) = 0.
func Entropy2(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to the closed interval [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ArgMax returns the index of the largest element of xs, or -1 for an
// empty slice. Ties resolve to the earliest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// NormalSample draws one sample from N(mean, sd²) using r. A non-positive
// sd returns mean exactly.
func NormalSample(r *rand.Rand, mean, sd float64) float64 {
	if sd <= 0 {
		return mean
	}
	return mean + sd*r.NormFloat64()
}

// Histogram counts xs into bins equal-width bins spanning [min, max].
// Values outside the range clamp to the first or last bin. It returns
// the counts and the bin edges (len bins+1). bins must be >= 1.
func Histogram(xs []float64, bins int, min, max float64) (counts []int, edges []float64) {
	if bins < 1 {
		bins = 1
	}
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	width := (max - min) / float64(bins)
	if width <= 0 {
		width = 1
	}
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - min) / width)
		b = ClampInt(b, 0, bins-1)
		counts[b]++
	}
	return counts, edges
}

// OverlapCoefficient estimates the overlap between the empirical
// distributions of a and b by histogramming both over their joint range
// with the given number of bins and summing min(pa, pb) per bin. The
// result is in [0, 1]: 0 means disjoint supports, 1 identical histograms.
func OverlapCoefficient(a, b []float64, bins int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	minA, maxA := MinMax(a)
	minB, maxB := MinMax(b)
	lo, hi := math.Min(minA, minB), math.Max(maxA, maxB)
	ca, _ := Histogram(a, bins, lo, hi)
	cb, _ := Histogram(b, bins, lo, hi)
	sum := 0.0
	for i := range ca {
		pa := float64(ca[i]) / float64(len(a))
		pb := float64(cb[i]) / float64(len(b))
		sum += math.Min(pa, pb)
	}
	return sum
}

// Shuffle permutes xs in place using r.
func Shuffle[T any](r *rand.Rand, xs []T) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n). When k >= n it returns all n indices. The result order is
// random.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	Shuffle(r, idx)
	if k > n {
		k = n
	}
	return idx[:k]
}

// EuclideanDistance returns the L2 distance between a and b, which must
// have equal length.
func EuclideanDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// RMSE returns the root-mean-square error between a and b, which must
// have equal length. It returns 0 for empty inputs.
func RMSE(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
