package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -2, 7, 0})
	if min != -2 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-2, 7)", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = (%v, %v), want (0, 0)", min, max)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
	// Interpolation between ranks.
	if got := Quantile([]float64{0, 10}, 0.5); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Quantile interpolated = %v, want 5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := IQR(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("IQR = %v, want 2", got)
	}
}

func TestEntropy2(t *testing.T) {
	if got := Entropy2(0.5); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Entropy2(0.5) = %v, want 1", got)
	}
	if got := Entropy2(0); got != 0 {
		t.Errorf("Entropy2(0) = %v, want 0", got)
	}
	if got := Entropy2(1); got != 0 {
		t.Errorf("Entropy2(1) = %v, want 0", got)
	}
	// Symmetry property.
	if a, b := Entropy2(0.2), Entropy2(0.8); !almostEqual(a, b, 1e-12) {
		t.Errorf("Entropy2 not symmetric: %v vs %v", a, b)
	}
}

func TestEntropy2Properties(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		e := Entropy2(p)
		return e >= 0 && e <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid = %v", got)
	}
	if got := ClampInt(7, 1, 5); got != 5 {
		t.Errorf("ClampInt = %v", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("ArgMax = %v, want 1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %v, want -1", got)
	}
	// Ties resolve to earliest.
	if got := ArgMax([]float64{2, 2}); got != 0 {
		t.Errorf("ArgMax tie = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4}, 5, 0, 5)
	for i, c := range counts {
		if c != 1 {
			t.Errorf("bin %d = %d, want 1", i, c)
		}
	}
	if len(edges) != 6 {
		t.Errorf("edges length = %d, want 6", len(edges))
	}
	// Out-of-range values clamp.
	counts, _ = Histogram([]float64{-10, 10}, 2, 0, 1)
	if counts[0] != 1 || counts[1] != 1 {
		t.Errorf("clamped counts = %v", counts)
	}
}

func TestOverlapCoefficient(t *testing.T) {
	a := []float64{0, 0.1, 0.2, 0.3}
	b := []float64{10, 10.1, 10.2, 10.3}
	if got := OverlapCoefficient(a, b, 20); got > 0.01 {
		t.Errorf("disjoint overlap = %v, want ~0", got)
	}
	if got := OverlapCoefficient(a, a, 20); !almostEqual(got, 1, 1e-9) {
		t.Errorf("self overlap = %v, want 1", got)
	}
	if got := OverlapCoefficient(nil, a, 10); got != 0 {
		t.Errorf("empty overlap = %v, want 0", got)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	r1, r2 := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestNormalSample(t *testing.T) {
	r := NewRand(1)
	if got := NormalSample(r, 3, 0); got != 3 {
		t.Errorf("sd=0 sample = %v, want 3", got)
	}
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = NormalSample(r, 5, 2)
	}
	if m := Mean(xs); math.Abs(m-5) > 0.1 {
		t.Errorf("sample mean = %v, want ~5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.1 {
		t.Errorf("sample sd = %v, want ~2", s)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRand(7)
	got := SampleWithoutReplacement(r, 10, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 10 {
			t.Errorf("index %d out of range", i)
		}
		if seen[i] {
			t.Errorf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// k >= n returns everything.
	all := SampleWithoutReplacement(r, 4, 10)
	if len(all) != 4 {
		t.Errorf("k>n len = %d, want 4", len(all))
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Errorf("k>n missing index %d", i)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRand(3)
	xs := []int{1, 2, 3, 4, 5, 6}
	orig := append([]int(nil), xs...)
	Shuffle(r, xs)
	sort.Ints(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("shuffle lost elements: %v", xs)
		}
	}
}

func TestEuclideanDistance(t *testing.T) {
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("distance = %v, want 5", got)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("identical RMSE = %v, want 0", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("empty RMSE = %v, want 0", got)
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q = math.Abs(math.Mod(q, 1))
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return almostEqual(Quantile(raw, q), QuantileSorted(sorted, q), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeriveSeed(t *testing.T) {
	// Deterministic: same (seed, stream) gives the same derived seed.
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Error("DeriveSeed not deterministic")
	}
	// Distinct streams from one base seed must not collide (the
	// per-tree / per-member independence the parallel trainers rely on).
	seen := map[int64]int64{}
	for _, base := range []int64{0, 1, -1, 42, 1 << 40} {
		for stream := int64(0); stream < 1000; stream++ {
			d := DeriveSeed(base, stream)
			if prev, dup := seen[d]; dup {
				t.Fatalf("collision: DeriveSeed(%d, %d) == %d (already from stream %d)", base, stream, d, prev)
			}
			seen[d] = stream
		}
	}
	// Derived streams should differ from the base seed itself.
	if DeriveSeed(7, 0) == 7 {
		t.Error("derived seed equals base seed")
	}
}
