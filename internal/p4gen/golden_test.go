package p4gen

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden artefact files")

// TestGoldenP4 pins the emitted program for a fixed deployment byte for
// byte: any template change shows up as a diff against
// testdata/golden.p4 (regenerate deliberately with `go test -update`).
func TestGoldenP4(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteP4(&buf, testDeployment()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.p4")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/p4gen -update`)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("emitted P4 diverges from the golden file:\n%s\nregenerate deliberately with `go test ./internal/p4gen -update`", firstDiff(string(want), buf.String()))
	}
}

// firstDiff renders the first diverging line of two texts.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(w), len(g))
}

func TestManifestRoundTrip(t *testing.T) {
	dep := testDeployment()
	var buf bytes.Buffer
	if err := WriteManifest(&buf, dep); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Program != "iguard_test" || m.Slots != 4096 || m.PktThreshold != 8 {
		t.Errorf("manifest header = %+v", m)
	}
	if m.TimeoutUs != 5_000_000 {
		t.Errorf("timeout_us = %d, want 5000000", m.TimeoutUs)
	}
	if m.FL == nil || m.PL == nil {
		t.Fatal("manifest missing rule-set sections")
	}
	if m.FL.Rules != len(dep.FLRules.Rules) {
		t.Errorf("fl rules = %d, want %d", m.FL.Rules, len(dep.FLRules.Rules))
	}
	if m.FL.RangeKeyBits != dep.FLRules.RangeKeyBits() {
		t.Errorf("fl range_key_bits = %d, want %d", m.FL.RangeKeyBits, dep.FLRules.RangeKeyBits())
	}
	if len(m.FL.Fields) != len(m.FL.Quantizer.Bits) {
		t.Errorf("fields/bits mismatch: %d vs %d", len(m.FL.Fields), len(m.FL.Quantizer.Bits))
	}
	// Defaulting matches the other writers: an unset blacklist capacity
	// lands at 8192.
	if m.BlacklistCapacity != 8192 {
		t.Errorf("blacklist_capacity = %d, want default 8192", m.BlacklistCapacity)
	}
}
