package p4gen

import (
	"encoding/json"
	"io"

	"iguard/internal/rules"
)

// Artifact file-name layout of one bundle. These helpers are the single
// source of truth shared by Bundle and the p4lint loader, so the two
// sides can never drift on naming.

// ProgramFileName returns the P4 program artefact name.
func ProgramFileName(program string) string { return program + ".p4" }

// ManifestFileName returns the bundle manifest artefact name.
func ManifestFileName(program string) string { return program + "_manifest.json" }

// RuleFileName returns the rule-entry artefact name for level "fl" or
// "pl".
func RuleFileName(program, level string) string { return program + "_" + level + "_rules.txt" }

// QuantFileName returns the quantiser-config artefact name for level
// "fl" or "pl".
func QuantFileName(program, level string) string { return program + "_" + level + "_quant.txt" }

// QuantizerManifest records the exact quantiser a rule set was compiled
// under, full-precision, so a verifier can rebuild it and round-trip
// the emitted integer rule ranges.
type QuantizerManifest struct {
	Min  []float64 `json:"min"`
	Max  []float64 `json:"max"`
	Bits []int     `json:"bits"`
}

// RuleSetManifest describes one emitted whitelist table and the
// compiled rule set behind it.
type RuleSetManifest struct {
	// Table is the P4 table the rules install into.
	Table string `json:"table"`
	// Rules is the number of installed whitelist rules (one rule-file
	// line each under nibble range encoding).
	Rules int `json:"rules"`
	// TotalEntries is the TCAM entry count under per-field prefix
	// expansion (the encoding-free upper bound).
	TotalEntries int `json:"total_entries"`
	// KeyBits is the plain match-key width (Σ feature bits).
	KeyBits int `json:"key_bits"`
	// RangeKeyBits is the key width under 4-bit nibble range encoding,
	// the layout the resource model accounts with.
	RangeKeyBits int `json:"range_key_bits"`
	// Fields names the P4 metadata key fields in feature order.
	Fields []string `json:"fields"`
	// Quantizer is the feature quantiser the rules were compiled under.
	Quantizer QuantizerManifest `json:"quantizer"`
}

// Manifest is the machine-readable bundle descriptor p4gen writes next
// to the artefacts. iguard-p4lint cross-checks every other artefact
// against it.
type Manifest struct {
	Program           string           `json:"program"`
	Generator         string           `json:"generator"`
	Slots             int              `json:"slots"`
	PktThreshold      int              `json:"pkt_threshold"`
	TimeoutUs         int64            `json:"timeout_us"`
	BlacklistCapacity int              `json:"blacklist_capacity"`
	FL                *RuleSetManifest `json:"fl"`
	PL                *RuleSetManifest `json:"pl,omitempty"`
}

// NewManifest builds the manifest for a deployment, applying the same
// defaulting as the other artefact writers.
func NewManifest(dep Deployment) (*Manifest, error) {
	if err := dep.validate(); err != nil {
		return nil, err
	}
	m := &Manifest{
		Program:           dep.ProgramName,
		Generator:         "iguard/internal/p4gen",
		Slots:             dep.Slots,
		PktThreshold:      dep.PktThreshold,
		TimeoutUs:         dep.Timeout.Microseconds(),
		BlacklistCapacity: dep.BlacklistCapacity,
		FL:                ruleSetManifest("fl_whitelist", dep.FLRules, flFieldNames()),
	}
	if dep.PLRules != nil {
		m.PL = ruleSetManifest("pl_whitelist", dep.PLRules, plFieldNames())
	}
	return m, nil
}

func ruleSetManifest(table string, rs *rules.CompiledRuleSet, fields []string) *RuleSetManifest {
	q := rs.Quantizer
	return &RuleSetManifest{
		Table:        table,
		Rules:        len(rs.Rules),
		TotalEntries: rs.TotalEntries,
		KeyBits:      rs.KeyBits,
		RangeKeyBits: rs.RangeKeyBits(),
		Fields:       fields,
		Quantizer:    QuantizerManifest{Min: q.Min, Max: q.Max, Bits: q.Bits},
	}
}

// WriteManifest emits the bundle manifest as indented JSON.
func WriteManifest(w io.Writer, dep Deployment) error {
	m, err := NewManifest(dep)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses a bundle manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
