package p4gen

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/rules"
)

// testRules builds a small compiled whitelist over dim features.
func testRules(dim, bits, n int) *rules.CompiledRuleSet {
	min := make([]float64, dim)
	max := make([]float64, dim)
	for i := range max {
		max[i] = 100
	}
	rs := &rules.RuleSet{Dim: dim, DefaultLabel: 1}
	for i := 0; i < n; i++ {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for j := range hi {
			lo[j] = float64(i)
			hi[j] = float64(i + 10)
		}
		rs.Rules = append(rs.Rules, rules.Rule{Box: rules.NewBox(lo, hi), Label: 0})
	}
	return rules.Compile(rs, rules.NewQuantizer(min, max, bits))
}

func testDeployment() Deployment {
	return Deployment{
		ProgramName:  "iguard_test",
		FLRules:      testRules(features.FLDim, 12, 5),
		PLRules:      testRules(features.PLDim, 12, 3),
		Slots:        4096,
		PktThreshold: 8,
		Timeout:      5 * time.Second,
	}
}

func TestWriteP4ContainsPipeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteP4(&buf, testDeployment()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"#include <tna.p4>",
		"table blacklist",
		"table fl_whitelist",
		"table pl_whitelist",
		"Digest<iguard_digest_t>",
		"Register<bit<32>, bit<32>>(4096) flow_id_lo_0",
		"meta.pkt_count >= 8",
		"timeout_us=5000000",
		"Switch(pipe) main;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("P4 output missing %q", want)
		}
	}
	// Every FL feature becomes a range key.
	for _, n := range features.FLNames {
		if !strings.Contains(out, "fl_"+n+" : range") {
			t.Errorf("missing FL range key for %s", n)
		}
	}
}

func TestWriteP4WithoutPL(t *testing.T) {
	dep := testDeployment()
	dep.PLRules = nil
	var buf bytes.Buffer
	if err := WriteP4(&buf, dep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "table pl_whitelist") {
		t.Error("PL table emitted without PL rules")
	}
}

func TestWriteP4RequiresFLRules(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteP4(&buf, Deployment{}); err == nil {
		t.Error("want error without FL rules")
	}
}

func TestWriteRuleEntries(t *testing.T) {
	rs := testRules(2, 8, 3)
	var buf bytes.Buffer
	if err := WriteRuleEntries(&buf, "fl_whitelist", rs, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "table_add fl_whitelist whitelist_hit a=") {
		t.Errorf("line = %q", lines[0])
	}
	if !strings.Contains(lines[0], "priority=0") || !strings.Contains(lines[2], "priority=2") {
		t.Error("priorities missing or wrong")
	}
	// Nil rule set is a no-op.
	if err := WriteRuleEntries(&buf, "x", nil, []string{"a"}); err != nil {
		t.Errorf("nil rules: %v", err)
	}
	// Missing field names error.
	if err := WriteRuleEntries(&buf, "x", rs, nil); err == nil {
		t.Error("want error without field names")
	}
}

func TestWriteQuantizerConfig(t *testing.T) {
	rs := testRules(2, 8, 1)
	var buf bytes.Buffer
	if err := WriteQuantizerConfig(&buf, rs, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "quantize a offset=0") || !strings.Contains(out, "bits=8") {
		t.Errorf("quantizer config = %q", out)
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Errorf("lines = %d, want 2", got)
	}
}

// memFile collects written bundles in memory.
type memFile struct {
	bytes.Buffer
	closed bool
}

func (m *memFile) Close() error { m.closed = true; return nil }

func TestBundleWritesAllArtifacts(t *testing.T) {
	files := map[string]*memFile{}
	open := func(name string) (io.WriteCloser, error) {
		f := &memFile{}
		files[name] = f
		return f, nil
	}
	if err := Bundle(testDeployment(), open); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"iguard_test.p4",
		"iguard_test_manifest.json",
		"iguard_test_fl_rules.txt",
		"iguard_test_fl_quant.txt",
		"iguard_test_pl_rules.txt",
		"iguard_test_pl_quant.txt",
	} {
		f, ok := files[want]
		if !ok {
			t.Errorf("missing artefact %s", want)
			continue
		}
		if f.Len() == 0 {
			t.Errorf("artefact %s empty", want)
		}
		if !f.closed {
			t.Errorf("artefact %s not closed", want)
		}
	}
}

func TestBundleOpenError(t *testing.T) {
	open := func(name string) (io.WriteCloser, error) {
		return nil, fmt.Errorf("nope")
	}
	if err := Bundle(testDeployment(), open); err == nil {
		t.Error("want error from opener")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 16: 16, 17: 32}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
